#include "testing/shrink.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace iiot::testing {

namespace {

/// One shrinking move. Returns false when it would not change the config
/// (already minimal along this axis), so no re-run is wasted on it.
using Move = std::function<bool(ScenarioConfig&)>;

std::vector<Move> moves() {
  std::vector<Move> m;
  // Big structural cuts first: each acceptance roughly halves the search.
  m.push_back([](ScenarioConfig& c) {
    if (c.nodes <= 3) return false;
    c.nodes = std::max<std::size_t>(3, c.nodes / 2);
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.crashes.empty()) return false;
    c.crashes.clear();
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.crashes.size() < 2) return false;
    c.crashes.pop_back();
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    radio::FaultInjectorConfig zero;
    zero.max_delay = c.frame_faults.max_delay;
    if (c.frame_faults.drop_p == 0.0 && c.frame_faults.corrupt_p == 0.0 &&
        c.frame_faults.duplicate_p == 0.0 && c.frame_faults.delay_p == 0.0) {
      return false;
    }
    c.frame_faults = zero;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.drop_p == 0.0) return false;
    c.frame_faults.drop_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.corrupt_p == 0.0) return false;
    c.frame_faults.corrupt_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.duplicate_p == 0.0) return false;
    c.frame_faults.duplicate_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.delay_p == 0.0) return false;
    c.frame_faults.delay_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.churn_slots == 0) return false;
    c.churn_slots = c.churn_slots > 1 ? 1 : 0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (!c.run_sched_check && !c.run_frag && !c.run_crdt && !c.run_cp &&
        !c.run_rnfd) {
      return false;
    }
    c.run_sched_check = c.run_frag = c.run_crdt = c.run_cp = c.run_rnfd =
        false;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.sigma_db == 0.0) return false;
    c.sigma_db = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.fault_time <= 5'000'000) return false;
    c.fault_time = std::max<sim::Duration>(5'000'000, c.fault_time / 2);
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.heal_time <= 10'000'000) return false;
    c.heal_time = std::max<sim::Duration>(10'000'000, c.heal_time / 2);
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.kv_ops <= 5) return false;
    c.kv_ops = std::max(5, c.kv_ops / 2);
    return true;
  });
  return m;
}

}  // namespace

ShrinkResult shrink_scenario(const ScenarioConfig& failing, int budget) {
  ShrinkResult res;
  res.config = failing;

  const std::vector<Move> m = moves();
  bool progressed = true;
  while (progressed && res.attempts < budget) {
    progressed = false;
    for (const Move& move : m) {
      if (res.attempts >= budget) break;
      ScenarioConfig candidate = res.config;
      if (!move(candidate)) continue;
      ++res.attempts;
      ScenarioResult r = run_scenario(candidate);
      if (!r.ok) {
        res.config = candidate;
        res.failure = r.failure;
        res.changed = true;
        progressed = true;
      }
    }
  }
  if (res.failure.empty()) {
    // Nothing shrank (or no move applied): report the original failure.
    res.failure = run_scenario(res.config).failure;
    ++res.attempts;
  }
  return res;
}

}  // namespace iiot::testing
