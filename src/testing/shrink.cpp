#include "testing/shrink.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "runner/engine.hpp"

namespace iiot::testing {

namespace {

/// One shrinking move. Returns false when it would not change the config
/// (already minimal along this axis), so no re-run is wasted on it.
using Move = std::function<bool(ScenarioConfig&)>;

std::vector<Move> moves() {
  std::vector<Move> m;
  // Big structural cuts first: each acceptance roughly halves the search.
  m.push_back([](ScenarioConfig& c) {
    if (c.nodes <= 3) return false;
    c.nodes = std::max<std::size_t>(3, c.nodes / 2);
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.crashes.empty()) return false;
    c.crashes.clear();
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.crashes.size() < 2) return false;
    c.crashes.pop_back();
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    radio::FaultInjectorConfig zero;
    zero.max_delay = c.frame_faults.max_delay;
    if (c.frame_faults.drop_p == 0.0 && c.frame_faults.corrupt_p == 0.0 &&
        c.frame_faults.duplicate_p == 0.0 && c.frame_faults.delay_p == 0.0) {
      return false;
    }
    c.frame_faults = zero;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.drop_p == 0.0) return false;
    c.frame_faults.drop_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.corrupt_p == 0.0) return false;
    c.frame_faults.corrupt_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.duplicate_p == 0.0) return false;
    c.frame_faults.duplicate_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.frame_faults.delay_p == 0.0) return false;
    c.frame_faults.delay_p = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.churn_slots == 0) return false;
    c.churn_slots = c.churn_slots > 1 ? 1 : 0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (!c.run_sched_check && !c.run_frag && !c.run_crdt && !c.run_cp &&
        !c.run_rnfd) {
      return false;
    }
    c.run_sched_check = c.run_frag = c.run_crdt = c.run_cp = c.run_rnfd =
        false;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.sigma_db == 0.0) return false;
    c.sigma_db = 0.0;
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.fault_time <= 5'000'000) return false;
    c.fault_time = std::max<sim::Duration>(5'000'000, c.fault_time / 2);
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.heal_time <= 10'000'000) return false;
    c.heal_time = std::max<sim::Duration>(10'000'000, c.heal_time / 2);
    return true;
  });
  m.push_back([](ScenarioConfig& c) {
    if (c.kv_ops <= 5) return false;
    c.kv_ops = std::max(5, c.kv_ops / 2);
    return true;
  });
  return m;
}

}  // namespace

ShrinkResult shrink_scenario(const ScenarioConfig& failing, int budget,
                             runner::Engine* engine) {
  ShrinkResult res;
  res.config = failing;

  runner::Engine inline_eng(1);
  runner::Engine& eng = engine != nullptr ? *engine : inline_eng;

  const std::vector<Move> m = moves();
  bool progressed = true;
  while (progressed && res.attempts < budget) {
    progressed = false;

    // Speculate every applicable move against the current config, in
    // fixed move order, sharded across the engine. The full round runs
    // even when an early candidate fails — that fixed shape is what
    // makes the rerun count and the accepted path jobs-invariant.
    std::vector<std::size_t> move_idx;
    std::vector<ScenarioConfig> candidates;
    for (std::size_t k = 0; k < m.size(); ++k) {
      if (res.attempts + static_cast<int>(candidates.size()) >= budget) break;
      ScenarioConfig c = res.config;
      if (!m[k](c)) continue;
      move_idx.push_back(k);
      candidates.push_back(std::move(c));
    }
    if (candidates.empty()) break;

    std::vector<ScenarioResult> verdicts(candidates.size());
    eng.run(candidates.size(), [&](std::size_t i) {
      verdicts[i] = run_scenario(candidates[i]);
    });
    res.attempts += static_cast<int>(candidates.size());

    // Accept failing candidates in move order. The first one applies
    // as-is; later failing moves were speculated against the stale base,
    // so re-apply them to the updated config and revalidate serially.
    bool accepted_this_round = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (verdicts[i].ok) continue;
      if (!accepted_this_round) {
        res.config = std::move(candidates[i]);
        res.failure = verdicts[i].failure;
        accepted_this_round = true;
        continue;
      }
      if (res.attempts >= budget) break;
      ScenarioConfig c = res.config;
      if (!m[move_idx[i]](c)) continue;
      ++res.attempts;
      ScenarioResult r = run_scenario(c);
      if (!r.ok) {
        res.config = std::move(c);
        res.failure = std::move(r.failure);
      }
    }
    if (accepted_this_round) {
      res.changed = true;
      progressed = true;
    }
  }
  if (res.failure.empty()) {
    // Nothing shrank (or no move applied): report the original failure.
    res.failure = run_scenario(res.config).failure;
    ++res.attempts;
  }
  return res;
}

}  // namespace iiot::testing
