// Parallel fuzz-batch execution on the runner engine (DESIGN.md §4e).
//
// Expands a contiguous seed range into scenarios, shards them across the
// engine, and aggregates results from per-seed slots in seed order — so
// the failing-seed list, the per-seed fingerprints and the failure report
// are byte-identical at any --jobs value. The fuzz CLI, the runner bench
// and the determinism self-check all run on this one path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/scenario.hpp"

namespace iiot::runner {
class Engine;
}

namespace iiot::testing {

struct FuzzBatchOptions {
  std::uint64_t runs = 200;
  std::uint64_t seed_base = 1;
  /// Plants the detach-cleanup bug in every scenario and stops the batch
  /// at the first caught failure (harness validation mode).
  bool canary = false;
  /// Failures reported in full (reproducer + shrink) in `report`.
  std::uint64_t max_reported = 5;
  /// Shrink reported failures (shrinking re-runs scenarios; disable for
  /// cheap determinism diffs).
  bool shrink = true;
  int shrink_budget = 48;
  /// Curated-scenario-family constraints on the generator (`iiot_fuzz
  /// --scenario=NAME`); the default profile is unconstrained. The name
  /// only labels reproducer lines.
  FuzzProfile profile;
  std::string profile_name;
};

struct FuzzBatchResult {
  /// Failing seeds in ascending seed order (jobs-invariant). In canary
  /// mode this holds at most the first caught seed.
  std::vector<std::uint64_t> failing_seeds;
  /// Per-seed fingerprints in seed order; truncated at the stop point in
  /// canary mode. Jobs-invariant.
  std::vector<Fingerprint> fingerprints;
  /// Generated MAC mix of the whole batch (pure function of the seeds).
  std::uint64_t by_mac[4] = {0, 0, 0, 0};
  /// FAIL/reproducer/shrink lines for the first `max_reported` failures,
  /// in seed order. Jobs-invariant.
  std::string report;
  /// Tasks actually executed. Under canary early-stop this depends on
  /// completion timing — wall-clock info only, never an artifact.
  std::size_t scenarios_executed = 0;

  [[nodiscard]] bool ok() const { return failing_seeds.empty(); }
};

/// Runs the batch on `eng`. Deterministic aggregation as described above.
[[nodiscard]] FuzzBatchResult run_fuzz_batch(const FuzzBatchOptions& opt,
                                             runner::Engine& eng);

/// In-process determinism self-check: runs the batch serially (jobs=1)
/// and again on `eng`, then diffs every jobs-invariant artifact
/// (failing seeds, per-seed fingerprints, report text). Returns "" when
/// byte-identical, else a description of the first divergence.
[[nodiscard]] std::string check_batch_determinism(const FuzzBatchOptions& opt,
                                                  runner::Engine& eng);

}  // namespace iiot::testing
