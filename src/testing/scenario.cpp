#include "testing/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "dependability/faults.hpp"
#include "energy/meter.hpp"
#include "mac/tdma.hpp"
#include "net/rnfd.hpp"
#include "obs/context.hpp"
#include "radio/medium.hpp"
#include "sim/scheduler.hpp"
#include "testing/invariants.hpp"

namespace iiot::testing {

using namespace sim;  // NOLINT: time literals (_s, _ms)

const char* to_string(ScenarioMac m) {
  switch (m) {
    case ScenarioMac::kCsma: return "csma";
    case ScenarioMac::kLpl: return "lpl";
    case ScenarioMac::kRiMac: return "rimac";
    case ScenarioMac::kTdma: return "tdma";
  }
  return "?";
}

const char* to_string(ScenarioTopology t) {
  switch (t) {
    case ScenarioTopology::kLine: return "line";
    case ScenarioTopology::kGrid: return "grid";
    case ScenarioTopology::kRandomField: return "field";
  }
  return "?";
}

std::string ScenarioConfig::summary() const {
  std::string s = "seed=" + std::to_string(seed);
  s += " mac=" + std::string(testing::to_string(mac));
  s += " topo=" + std::string(testing::to_string(topology));
  s += " n=" + std::to_string(nodes);
  s += " spacing=" + std::to_string(spacing).substr(0, 4);
  s += " sigma=" + std::to_string(sigma_db).substr(0, 3);
  s += " phases=" + std::to_string(form_time / 1_s) + "/" +
       std::to_string(fault_time / 1_s) + "/" +
       std::to_string(heal_time / 1_s) + "s";
  s += " crashes=[";
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(crashes[i].node_index);
    if (!crashes[i].repair) s += "!";
  }
  s += "]";
  s += " faults{d=" + std::to_string(frame_faults.drop_p).substr(0, 4) +
       ",c=" + std::to_string(frame_faults.corrupt_p).substr(0, 4) +
       ",u=" + std::to_string(frame_faults.duplicate_p).substr(0, 4) +
       ",y=" + std::to_string(frame_faults.delay_p).substr(0, 4) + "}";
  s += " churn=" + std::to_string(churn_slots);
  s += " checks=";
  if (run_sched_check) s += "S";
  if (run_frag) s += "F";
  if (run_crdt) s += "A";
  if (run_cp) s += "C";
  if (run_rnfd) s += "R";
  if (canary_skip_detach_cleanup) s += " CANARY";
  return s;
}

std::string Fingerprint::to_string() const {
  return "t=" + std::to_string(final_time) +
         " ev=" + std::to_string(events) +
         " tx=" + std::to_string(transmissions) +
         " rx=" + std::to_string(deliveries) +
         " col=" + std::to_string(collisions) +
         " snr=" + std::to_string(snr_losses) +
         " abrt=" + std::to_string(aborted) +
         " fdrop=" + std::to_string(fault_drops) +
         " fdup=" + std::to_string(fault_dups) +
         " fdly=" + std::to_string(fault_delays) +
         " macok=" + std::to_string(mac_delivered) +
         " root=" + std::to_string(root_rx) +
         " repar=" + std::to_string(parent_changes) +
         " join=" + std::to_string(joined_permille) +
         " crash=" + std::to_string(crash_failures) +
         " inj=" + std::to_string(injected_faults) +
         " loop=" + std::to_string(transient_loops) +
         " chk=" + std::to_string(checks_passed);
}

namespace {

constexpr NodeId kChurnIdBase = 0xF0000;

/// RPL pacing matched to the MAC (same policy as the benches): duty-cycled
/// MACs get a Trickle Imin no shorter than several wake intervals.
core::NodeConfig paced_config(ScenarioMac mac) {
  core::NodeConfig cfg;
  const sim::Duration wake = 500'000;
  cfg.lpl.wake_interval = wake;
  cfg.rimac.wake_interval = wake;
  if (mac == ScenarioMac::kCsma) {
    cfg.mac = core::MacKind::kCsma;
    cfg.rpl.trickle = net::TrickleConfig{500'000, 8, 3};
    cfg.rpl.dao_interval = 30'000'000;
  } else {
    cfg.mac = mac == ScenarioMac::kLpl ? core::MacKind::kLpl
                                       : core::MacKind::kRiMac;
    cfg.rpl.trickle = net::TrickleConfig{2'000'000, 8, 2};
    cfg.rpl.dao_interval = 90'000'000;
    cfg.rpl.dis_interval = 15'000'000;
    cfg.rpl.max_parent_failures = 6;
  }
  return cfg;
}

radio::PropagationConfig propagation_for(const ScenarioConfig& cfg) {
  radio::PropagationConfig pcfg;
  pcfg.exponent = cfg.exponent;
  pcfg.shadowing_sigma_db = cfg.sigma_db;
  return pcfg;
}

void write_sample(Buffer& p, std::uint32_t origin, std::uint32_t seq) {
  p.resize(8);
  for (int i = 0; i < 4; ++i) {
    p[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(origin >> (8 * i));
    p[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(seq >> (8 * i));
  }
}

bool read_sample(BytesView p, std::uint32_t& origin, std::uint32_t& seq) {
  if (p.size() != 8) return false;
  origin = 0;
  seq = 0;
  for (int i = 0; i < 4; ++i) {
    origin |= static_cast<std::uint32_t>(p[static_cast<std::size_t>(i)])
              << (8 * i);
    seq |= static_cast<std::uint32_t>(p[static_cast<std::size_t>(4 + i)])
           << (8 * i);
  }
  return true;
}

/// Root-side delivery ledger: counts receptions, well-formedness and
/// (origin, seq) duplicates. Heap-allocated so handler closures can hold a
/// stable pointer.
struct RootLog {
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t rx = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t malformed = 0;

  void record(NodeId expected_origin, BytesView payload, bool check_origin) {
    ++rx;
    std::uint32_t origin = 0;
    std::uint32_t seq = 0;
    if (!read_sample(payload, origin, seq) ||
        (check_origin && origin != expected_origin)) {
      ++malformed;
      return;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(origin) << 32) | seq;
    if (!seen.insert(key).second) ++duplicates;
  }
};

/// Steps the simulation in 1 s chunks, cross-checking medium bookkeeping
/// at every chunk boundary. Routing is sampled too, but parent loops are
/// only *counted* here: distance-vector routing forms transient loops
/// legitimately while rank updates propagate (the data path tolerates
/// them via the TTL), so loop-freedom is asserted as an eventual property
/// at phase ends, not instant by instant.
/// One-line routing snapshot (version, parent, rank per node) — appended
/// to settle failures and printed per checkpoint under --trace so a
/// replayed seed is diagnosable from its output alone.
[[nodiscard]] std::string routing_table(core::MeshNetwork& net) {
  std::string out = " [";
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& r = *net.node(i).routing;
    if (i > 0) out += ' ';
    out += std::to_string(net.node(i).id) + ":v" +
           std::to_string(r.version()) + ",p=" +
           (r.is_root() ? std::string("root")
                        : std::to_string(r.preferred_parent())) +
           ",rk=" + std::to_string(r.rank()) + ",dio=" +
           std::to_string(r.stats().dio_rx) + "/" +
           std::to_string(r.stats().dio_tx) + ",dis=" +
           std::to_string(r.stats().dis_tx);
  }
  return out + "]";
}

struct Checkpointer {
  sim::Scheduler& sched;
  radio::Medium& medium;
  core::MeshNetwork* mesh = nullptr;
  bool trace = false;
  std::uint64_t checks = 0;
  std::uint64_t transient_loops = 0;

  [[nodiscard]] std::string advance(sim::Time to) {
    while (sched.now() < to) {
      sched.run_until(std::min<sim::Time>(to, sched.now() + 1_s));
      ++checks;
      if (auto v = medium.check_consistency(); !v.empty()) return v;
      if (mesh != nullptr && !check_routing_acyclic(*mesh).empty()) {
        ++transient_loops;
      }
      if (trace && mesh != nullptr) {
        std::fprintf(stderr, "t=%3llus%s\n",
                     static_cast<unsigned long long>(sched.now() / 1_s),
                     routing_table(*mesh).c_str());
      }
    }
    return {};
  }
};

/// A transient listener that attaches mid-run and detaches while frames
/// are on the air — the membership-churn case detach cleanup exists for.
struct ChurnRig {
  energy::Meter meter;
  std::unique_ptr<radio::Radio> radio;
};

/// Runs the fault window with `slots` churn episodes spread across it.
/// Driven from outside the event loop so that on an invariant violation
/// (the canary) no further event — which could dereference the stale
/// bookkeeping — ever executes.
[[nodiscard]] std::string run_fault_window(Checkpointer& cp,
                                           radio::Medium& medium,
                                           sim::Scheduler& sched,
                                           radio::Position near,
                                           sim::Time fault_end, int slots) {
  for (int k = 0; k < slots; ++k) {
    const sim::Time window = fault_end - sched.now();
    const sim::Time at =
        sched.now() + window * static_cast<sim::Time>(k + 1) /
                          static_cast<sim::Time>(slots + 1);
    if (auto v = cp.advance(at); !v.empty()) return v;

    ChurnRig rig;
    rig.radio = std::make_unique<radio::Radio>(
        medium, sched, kChurnIdBase + static_cast<NodeId>(k),
        radio::Position{near.x + 2.0, near.y + 1.5}, rig.meter);
    rig.radio->set_mode(radio::Mode::kListen);

    // Wait (in fine steps, so short frames are observable) for a moment
    // with transmissions in flight, then yank the radio out mid-air.
    const sim::Time deadline = std::min<sim::Time>(fault_end, at + 3_s);
    while (sched.now() < deadline && medium.in_flight() == 0) {
      sched.run_until(std::min<sim::Time>(deadline, sched.now() + 250));
    }
    rig.radio.reset();  // ~Radio → detach while receptions may be live
    ++cp.checks;
    if (auto v = medium.check_consistency(); !v.empty()) {
      return "churn detach: " + v;
    }
  }
  return cp.advance(fault_end);
}

/// Self-contained property checks folded into the scenario tail.
[[nodiscard]] std::string run_subchecks(const ScenarioConfig& cfg,
                                        std::uint64_t& passed) {
  if (cfg.run_sched_check) {
    if (auto v = check_scheduler_properties(cfg.seed); !v.empty()) return v;
    ++passed;
  }
  if (cfg.run_frag) {
    if (auto v = check_frag_roundtrip(cfg.seed); !v.empty()) return v;
    ++passed;
  }
  if (cfg.run_crdt) {
    if (auto v = check_crdt_convergence(cfg.seed, cfg.kv_replicas, cfg.kv_ops);
        !v.empty()) {
      return v;
    }
    ++passed;
  }
  if (cfg.run_cp) {
    if (auto v =
            check_cp_read_your_writes(cfg.seed, cfg.kv_replicas, cfg.kv_ops);
        !v.empty()) {
      return v;
    }
    ++passed;
  }
  return {};
}

ScenarioResult run_mesh(const ScenarioConfig& cfg) {
  sim::Scheduler sched;
  // Observability rides along with every fuzzed scenario: the contract is
  // that tracing can be on anywhere without perturbing the simulation, so
  // the fuzzer keeps it on everywhere and audits every span the run
  // produced (check_trace_wellformed at the end). The bounded capacity
  // also exercises the deterministic-drop path on chatty scenarios.
  obs::Context obsctx(sched, 1u << 18);
  obsctx.tracer().set_enabled(true);
  radio::Medium medium(sched, propagation_for(cfg), cfg.seed);
  medium.debug_set_skip_detach_cleanup(cfg.canary_skip_detach_cleanup);
  radio::FaultInjector injector(medium, cfg.seed, cfg.frame_faults);

  const std::size_t n = std::max<std::size_t>(cfg.nodes, 3);
  core::MeshNetwork net(sched, medium, Rng(cfg.seed, 5), paced_config(cfg.mac));
  switch (cfg.topology) {
    case ScenarioTopology::kLine: net.build_line(n, cfg.spacing); break;
    case ScenarioTopology::kGrid: net.build_grid(n, cfg.spacing); break;
    case ScenarioTopology::kRandomField:
      net.build_random_field(n, cfg.spacing * std::sqrt(static_cast<double>(n)));
      break;
  }
  net.start(0);

  const bool corrupting = cfg.frame_faults.corrupt_p > 0.0;
  auto log = std::make_unique<RootLog>();
  net.root().routing->set_delivery_handler(
      [log = log.get()](NodeId origin, BytesView payload, std::uint8_t) {
        log->record(origin, payload, /*check_origin=*/true);
      });

  // Pre-scheduled periodic traffic from every non-root node, phased so
  // senders never align. The horizon extends past the nominal end so
  // grace extensions (below) stay under load; surplus events simply
  // never run.
  const sim::Time end_time = cfg.form_time + cfg.fault_time + cfg.heal_time;
  for (std::size_t i = 1; i < net.size(); ++i) {
    core::MeshNode* node = &net.node(i);
    const auto origin = static_cast<std::uint32_t>(node->id);
    const sim::Time phase =
        200'000 + (static_cast<sim::Time>(i) * 7'919) % cfg.traffic_period;
    std::uint32_t seq = 0;
    for (sim::Time t = cfg.form_time / 2 + phase; t < end_time + 90_s;
         t += cfg.traffic_period) {
      sched.schedule_at(t, [node, origin, seq] {
        if (!node->routing->joined() || node->routing->is_root()) return;
        Buffer p;
        write_sample(p, origin, seq);
        (void)node->routing->send_up(std::move(p));
      });
      ++seq;
    }
  }

  // RNFD false-positive watch (clean scenarios only): the root stays up
  // throughout, so no detector may ever declare it dead.
  std::vector<std::unique_ptr<net::RnfdDetector>> detectors;
  if (cfg.run_rnfd) {
    net::RnfdConfig rcfg;
    if (cfg.mac != ScenarioMac::kCsma) {
      // On duty-cycled MACs a broadcast occupies ~a full wake interval
      // of airtime; 1s-paced gossip from every node would saturate the
      // channel and manufacture the probe losses it then votes on.
      rcfg.gossip_interval = 5'000'000;
    }
    for (std::size_t i = 1; i < net.size(); ++i) {
      detectors.push_back(std::make_unique<net::RnfdDetector>(
          *net.node(i).routing, sched,
          Rng(cfg.seed, 300 + static_cast<std::uint64_t>(i)), rcfg));
    }
    sched.schedule_at(cfg.form_time / 2, [&detectors] {
      for (auto& d : detectors) d->start();
    });
  }

  std::uint64_t crash_failures = 0;
  std::uint64_t subchecks_passed = 0;
  Checkpointer cp{sched, medium, &net, cfg.trace, 0, 0};

  const auto snapshot = [&](double joined) {
    Fingerprint fp;
    fp.final_time = sched.now();
    fp.events = sched.executed_events();
    const radio::MediumStats& ms = medium.stats();
    fp.transmissions = ms.transmissions;
    fp.deliveries = ms.deliveries;
    fp.collisions = ms.collisions;
    fp.snr_losses = ms.snr_losses;
    fp.aborted = ms.aborted;
    fp.fault_drops = ms.fault_drops;
    fp.fault_dups = ms.fault_dups;
    fp.fault_delays = ms.fault_delays;
    for (std::size_t i = 0; i < net.size(); ++i) {
      fp.mac_delivered += net.node(i).mac->stats().delivered;
      fp.parent_changes += net.node(i).routing->stats().parent_changes;
    }
    fp.root_rx = log->rx;
    fp.joined_permille =
        static_cast<std::uint64_t>(joined * 1000.0 + 0.5);
    fp.crash_failures = crash_failures;
    const radio::FaultInjectorStats& is = injector.stats();
    fp.injected_faults =
        is.dropped + is.corrupted + is.duplicated + is.delayed;
    fp.transient_loops = cp.transient_loops;
    fp.checks_passed = cp.checks + subchecks_passed;
    return fp;
  };
  const auto finish = [&](std::string failure) {
    ScenarioResult res;
    res.ok = failure.empty();
    res.failure = std::move(failure);
    res.fingerprint = snapshot(net.joined_fraction());
    return res;
  };

  // ---- Phase 1: formation --------------------------------------------
  if (auto v = cp.advance(cfg.form_time); !v.empty()) {
    return finish("formation: " + v);
  }
  // Duty-cycled MACs on unlucky geometries may need a little extra; two
  // bounded grace extensions keep the generator's time budget honest
  // without flaking.
  for (int grace = 0; grace < 2; ++grace) {
    if (cfg.topology == ScenarioTopology::kRandomField) break;
    if (net.joined_fraction() >= 1.0) break;
    if (auto v = cp.advance(sched.now() + 15_s); !v.empty()) {
      return finish("formation: " + v);
    }
  }
  const double baseline = net.joined_fraction();
  if (cfg.topology != ScenarioTopology::kRandomField && baseline < 1.0) {
    return finish("formation: only " + std::to_string(baseline) +
                  " of nodes joined the DODAG");
  }

  // ---- Phase 2: faults ------------------------------------------------
  if (cfg.frame_faults.drop_p > 0.0 || cfg.frame_faults.corrupt_p > 0.0 ||
      cfg.frame_faults.duplicate_p > 0.0 || cfg.frame_faults.delay_p > 0.0) {
    injector.enable();
  }
  std::vector<std::unique_ptr<dependability::CrashProcess>> procs;
  std::vector<core::MeshNode*> crash_nodes;
  std::unordered_set<std::size_t> crash_indices;
  for (const CrashPlan& plan : cfg.crashes) {
    const std::size_t idx =
        1 + plan.node_index % std::max<std::size_t>(net.size() - 1, 1);
    if (!crash_indices.insert(idx).second) continue;  // one process per node
    core::MeshNode* node = &net.node(idx);
    dependability::FaultConfig fc;
    fc.mttf_seconds = plan.mttf_s;
    fc.mttr_seconds = plan.mttr_s;
    fc.repair = plan.repair;
    procs.push_back(std::make_unique<dependability::CrashProcess>(
        sched, Rng(cfg.seed, 500 + static_cast<std::uint64_t>(idx)), fc,
        [node, &crash_failures] {
          ++crash_failures;
          node->stop();
        },
        [node] { node->start(false); }));
    crash_nodes.push_back(node);
    procs.back()->start();
  }

  if (auto v = run_fault_window(cp, medium, sched,
                                net.root().radio.position(),
                                sched.now() + cfg.fault_time,
                                cfg.churn_slots);
      !v.empty()) {
    return finish("fault phase: " + v);
  }

  // ---- Phase 3: heal --------------------------------------------------
  injector.disable();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    procs[i]->stop();
    if (!procs[i]->up()) crash_nodes[i]->start(false);  // replace dead gear
  }
  // Version bump clears any stale state (rank lies from corrupted DIOs
  // included) and forces a fresh DODAG.
  net.root().routing->global_repair();
  if (auto v = cp.advance(sched.now() + cfg.heal_time); !v.empty()) {
    return finish("heal: " + v);
  }

  // ---- Final cross-layer invariants ----------------------------------
  // Eventual repair: once faults stop, the DODAG must settle loop-free
  // and fully joined. Bounded grace covers duty-cycled stragglers.
  // On a settle failure the parent table is the evidence; append it so
  // a replayed seed is diagnosable from the one-line report alone.
  const auto settled = [&]() -> std::string {
    if (auto v = check_routing_acyclic(net); !v.empty()) {
      return "loop persists after heal: " + v + routing_table(net);
    }
    const double joined = net.joined_fraction();
    if (cfg.topology != ScenarioTopology::kRandomField && joined < 1.0) {
      return "network never fully re-joined (" + std::to_string(joined) +
             ")" + routing_table(net);
    }
    if (cfg.topology == ScenarioTopology::kRandomField &&
        joined + 1e-9 < baseline) {
      return "joined fraction regressed (" + std::to_string(baseline) +
             " -> " + std::to_string(joined) + ")";
    }
    return {};
  };
  std::string settle_fail = settled();
  for (int grace = 0; grace < 2 && !settle_fail.empty(); ++grace) {
    if (auto v = cp.advance(sched.now() + 15_s); !v.empty()) {
      return finish("heal: " + v);
    }
    settle_fail = settled();
  }
  if (!settle_fail.empty()) {
    return finish("heal: " + settle_fail);
  }
  if (log->rx == 0) {
    return finish("delivery: no data ever reached the root");
  }
  if (!corrupting && log->malformed != 0) {
    return finish("delivery: " + std::to_string(log->malformed) +
                  " malformed payloads at the root without corruption");
  }
  if (!corrupting && log->duplicates != 0) {
    return finish("delivery: " + std::to_string(log->duplicates) +
                  " duplicate (origin,seq) deliveries at the root");
  }
  for (auto& d : detectors) {
    if (d->root_declared_dead()) {
      std::string detail = "rnfd: live root declared dead (false positive) [";
      for (std::size_t i = 0; i < detectors.size(); ++i) {
        const net::RnfdStats& st = detectors[i]->stats();
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s%zu:%s p=%llu/%llu ep=%llu sus=%zu%s",
                      i ? " " : "", i + 1,
                      detectors[i]->is_sentinel() ? "S" : "-",
                      static_cast<unsigned long long>(st.probes_acked),
                      static_cast<unsigned long long>(st.probes_sent),
                      static_cast<unsigned long long>(st.epoch_advances),
                      detectors[i]->counter().suspect_count(),
                      detectors[i]->root_declared_dead() ? "!" : "");
        detail += buf;
      }
      detail += "]";
      return finish(detail);
    }
  }

  ++cp.checks;
  if (auto v = check_trace_wellformed(obsctx.tracer()); !v.empty()) {
    return finish(v);
  }

  if (auto v = run_subchecks(cfg, subchecks_passed); !v.empty()) {
    return finish(v);
  }
  return finish({});
}

/// TDMA has no RPL (collection-only MAC), so the scenario is a line with
/// explicitly wired schedules and hop-by-hop forwarding toward node 0.
ScenarioResult run_tdma(const ScenarioConfig& cfg) {
  sim::Scheduler sched;
  obs::Context obsctx(sched, 1u << 18);  // same audit as run_mesh
  obsctx.tracer().set_enabled(true);
  radio::Medium medium(sched, propagation_for(cfg), cfg.seed);
  medium.debug_set_skip_detach_cleanup(cfg.canary_skip_detach_cleanup);
  radio::FaultInjector injector(medium, cfg.seed, cfg.frame_faults);

  struct TdmaNode {
    energy::Meter meter;
    radio::Radio radio;
    mac::TdmaMac mac;
    TdmaNode(radio::Medium& m, sim::Scheduler& s, NodeId id,
             radio::Position pos, Rng rng, const mac::TdmaConfig& cfg)
        : radio(m, s, id, pos, meter), mac(radio, s, rng, 0, cfg) {}
  };

  mac::TdmaConfig tcfg;
  tcfg.epoch = 1'000'000;
  tcfg.slot = 40'000;
  tcfg.staggered = true;

  const std::size_t n = std::max<std::size_t>(cfg.nodes, 3);
  std::vector<std::unique_ptr<TdmaNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<TdmaNode>(
        medium, sched, static_cast<NodeId>(i),
        radio::Position{static_cast<double>(i) * cfg.spacing, 0.0},
        Rng(cfg.seed, 60 + static_cast<std::uint64_t>(i)), tcfg));
    mac::TdmaSchedule s;
    s.parent = i == 0 ? kInvalidNode : static_cast<NodeId>(i - 1);
    s.depth = static_cast<int>(i);
    s.max_depth = static_cast<int>(n - 1);
    s.has_children = i + 1 < n;
    nodes.back()->mac.configure(s);
  }

  const bool corrupting = cfg.frame_faults.corrupt_p > 0.0;
  auto log = std::make_unique<RootLog>();
  for (std::size_t i = 0; i < n; ++i) {
    mac::Mac& m = nodes[i]->mac;
    if (i == 0) {
      // Forwarded payloads carry the true origin; the MAC-level src is
      // just the last hop, so origin cross-checking is skipped.
      m.set_receive_handler(
          [log = log.get()](NodeId, BytesView p, double) {
            log->record(0, p, /*check_origin=*/false);
          });
    } else {
      const auto parent = static_cast<NodeId>(i - 1);
      mac::Mac* self = &nodes[i]->mac;
      m.set_receive_handler([self, parent](NodeId, BytesView p, double) {
        self->send(parent, Buffer(p.begin(), p.end()));
      });
    }
    m.start();
  }

  const sim::Time end_time = cfg.form_time + cfg.fault_time + cfg.heal_time;
  for (std::size_t i = 1; i < n; ++i) {
    mac::Mac* m = &nodes[i]->mac;
    const auto parent = static_cast<NodeId>(i - 1);
    const auto origin = static_cast<std::uint32_t>(i);
    const sim::Time phase =
        200'000 + (static_cast<sim::Time>(i) * 7'919) % cfg.traffic_period;
    std::uint32_t seq = 0;
    for (sim::Time t = cfg.form_time / 2 + phase; t + 2_s < end_time;
         t += cfg.traffic_period) {
      sched.schedule_at(t, [m, parent, origin, seq] {
        Buffer p;
        write_sample(p, origin, seq);
        (void)m->send(parent, std::move(p));
      });
      ++seq;
    }
  }

  std::uint64_t crash_failures = 0;
  std::uint64_t subchecks_passed = 0;
  Checkpointer cp{sched, medium, nullptr, false, 0, 0};

  const auto snapshot = [&] {
    Fingerprint fp;
    fp.final_time = sched.now();
    fp.events = sched.executed_events();
    const radio::MediumStats& ms = medium.stats();
    fp.transmissions = ms.transmissions;
    fp.deliveries = ms.deliveries;
    fp.collisions = ms.collisions;
    fp.snr_losses = ms.snr_losses;
    fp.aborted = ms.aborted;
    fp.fault_drops = ms.fault_drops;
    fp.fault_dups = ms.fault_dups;
    fp.fault_delays = ms.fault_delays;
    for (auto& node : nodes) fp.mac_delivered += node->mac.stats().delivered;
    fp.root_rx = log->rx;
    fp.joined_permille = 1000;  // no routing layer to join
    fp.crash_failures = crash_failures;
    const radio::FaultInjectorStats& is = injector.stats();
    fp.injected_faults =
        is.dropped + is.corrupted + is.duplicated + is.delayed;
    fp.transient_loops = cp.transient_loops;
    fp.checks_passed = cp.checks + subchecks_passed;
    return fp;
  };
  const auto finish = [&](std::string failure) {
    ScenarioResult res;
    res.ok = failure.empty();
    res.failure = std::move(failure);
    res.fingerprint = snapshot();
    return res;
  };

  if (auto v = cp.advance(cfg.form_time); !v.empty()) {
    return finish("formation: " + v);
  }

  const bool clean = cfg.crashes.empty() &&
                     cfg.frame_faults.drop_p == 0.0 &&
                     cfg.frame_faults.corrupt_p == 0.0 &&
                     cfg.frame_faults.duplicate_p == 0.0 &&
                     cfg.frame_faults.delay_p == 0.0;
  if (!clean) injector.enable();

  std::vector<std::unique_ptr<dependability::CrashProcess>> procs;
  std::vector<mac::Mac*> crash_macs;
  std::unordered_set<std::size_t> crash_indices;
  for (const CrashPlan& plan : cfg.crashes) {
    const std::size_t idx = 1 + plan.node_index % (n - 1);
    if (!crash_indices.insert(idx).second) continue;
    mac::Mac* m = &nodes[idx]->mac;
    dependability::FaultConfig fc;
    fc.mttf_seconds = plan.mttf_s;
    fc.mttr_seconds = plan.mttr_s;
    fc.repair = plan.repair;
    procs.push_back(std::make_unique<dependability::CrashProcess>(
        sched, Rng(cfg.seed, 500 + static_cast<std::uint64_t>(idx)), fc,
        [m, &crash_failures] {
          ++crash_failures;
          m->stop();
        },
        [m] { m->start(); }));
    crash_macs.push_back(m);
    procs.back()->start();
  }

  if (auto v = run_fault_window(cp, medium, sched,
                                nodes[0]->radio.position(),
                                sched.now() + cfg.fault_time,
                                cfg.churn_slots);
      !v.empty()) {
    return finish("fault phase: " + v);
  }

  injector.disable();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    procs[i]->stop();
    if (!procs[i]->up()) crash_macs[i]->start();
  }
  if (auto v = cp.advance(sched.now() + cfg.heal_time); !v.empty()) {
    return finish("heal: " + v);
  }

  // TDMA has no retransmission dedup above the MAC, so duplicates at the
  // root are legitimate whenever acks can be lost; only delivery and
  // payload integrity are invariant, and only in clean runs.
  if (clean && log->rx == 0) {
    return finish("delivery: clean TDMA line delivered nothing to the root");
  }
  if (!corrupting && log->malformed != 0) {
    return finish("delivery: " + std::to_string(log->malformed) +
                  " malformed payloads at the root without corruption");
  }

  ++cp.checks;
  if (auto v = check_trace_wellformed(obsctx.tracer()); !v.empty()) {
    return finish(v);
  }

  if (auto v = run_subchecks(cfg, subchecks_passed); !v.empty()) {
    return finish(v);
  }
  return finish({});
}

}  // namespace

ScenarioConfig generate_scenario(std::uint64_t seed) {
  return generate_scenario(seed, FuzzProfile{});
}

ScenarioConfig generate_scenario(std::uint64_t seed,
                                 const FuzzProfile& profile) {
  Rng g(seed, 42);
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.mac = profile.mac ? *profile.mac : static_cast<ScenarioMac>(g.below(4));
  const bool duty =
      cfg.mac == ScenarioMac::kLpl || cfg.mac == ScenarioMac::kRiMac;

  // Profiled node counts replace the per-MAC default ranges; the draw
  // still happens so downstream draws keep their positions either way.
  const auto pick_nodes = [&](std::size_t lo, std::size_t span) {
    const std::uint32_t raw = g.below(static_cast<std::uint32_t>(span));
    if (profile.min_nodes == 0) return lo + raw;
    const std::size_t width = profile.max_nodes >= profile.min_nodes
                                  ? profile.max_nodes - profile.min_nodes + 1
                                  : 1;
    return profile.min_nodes + raw % width;
  };

  if (cfg.mac == ScenarioMac::kTdma) {
    cfg.topology = ScenarioTopology::kLine;  // TDMA is collection-only
    cfg.nodes = pick_nodes(3, 6);
    cfg.spacing = g.uniform(14.0, 22.0);
  } else {
    cfg.topology = profile.topology
                       ? *profile.topology
                       : static_cast<ScenarioTopology>(g.below(3));
    cfg.nodes = cfg.mac == ScenarioMac::kCsma ? pick_nodes(5, 14)
                                              : pick_nodes(4, 5);
    switch (cfg.topology) {
      case ScenarioTopology::kLine: cfg.spacing = g.uniform(14.0, 22.0); break;
      case ScenarioTopology::kGrid: cfg.spacing = g.uniform(12.0, 18.0); break;
      case ScenarioTopology::kRandomField:
        cfg.spacing = g.uniform(12.0, 16.0);
        break;
    }
  }
  cfg.sigma_db = g.chance(0.5) ? g.uniform(0.0, 2.0) : 0.0;
  cfg.exponent = g.uniform(2.8, 3.2);

  cfg.form_time = duty ? 60_s : 25_s;
  cfg.fault_time = seconds(static_cast<double>(20 + g.below(21)));
  cfg.heal_time =
      seconds(static_cast<double>(duty ? 60 + g.below(31) : 40 + g.below(21)));
  // Offered load must respect channel capacity: on a duty-cycled MAC one
  // unicast hop strobes for ~¼–½ s of air (until the sleeper's sample
  // window catches it), and a collection tree multiplies that by hop
  // count. Scale the per-node period with network size so aggregate
  // airtime stays under the channel — sub-second periods would put the
  // mesh into permanent congestion collapse and nothing could settle.
  cfg.traffic_period =
      duty ? seconds(static_cast<double>(cfg.nodes) * (1.0 + 0.1 * g.below(9)))
           : 1'000'000 + g.below(1'000'001);

  const std::uint32_t ncrash = g.below(3);
  for (std::uint32_t k = 0; k < ncrash; ++k) {
    CrashPlan p;
    p.node_index = 1 + g.below(static_cast<std::uint32_t>(cfg.nodes - 1));
    p.mttf_s = g.uniform(5.0, 15.0);
    p.mttr_s = g.uniform(3.0, 8.0);
    p.repair = !g.chance(0.25);
    cfg.crashes.push_back(p);
  }

  if (g.chance(0.6)) {
    if (g.chance(0.5)) cfg.frame_faults.drop_p = g.uniform(0.0, 0.08);
    if (g.chance(0.4)) cfg.frame_faults.corrupt_p = g.uniform(0.0, 0.05);
    if (g.chance(0.4)) cfg.frame_faults.duplicate_p = g.uniform(0.0, 0.10);
    if (g.chance(0.4)) cfg.frame_faults.delay_p = g.uniform(0.0, 0.10);
  }
  cfg.churn_slots = std::max(static_cast<int>(g.below(3)),
                             profile.min_churn_slots);

  cfg.run_sched_check = g.chance(0.5);
  cfg.run_frag = g.chance(0.5);
  cfg.run_crdt = g.chance(0.35) || profile.force_crdt;
  cfg.run_cp = g.chance(0.35);
  const bool clean = cfg.crashes.empty() &&
                     cfg.frame_faults.drop_p == 0.0 &&
                     cfg.frame_faults.corrupt_p == 0.0 &&
                     cfg.frame_faults.duplicate_p == 0.0 &&
                     cfg.frame_faults.delay_p == 0.0;
  cfg.run_rnfd = cfg.mac != ScenarioMac::kTdma && clean &&
                 (g.chance(0.6) || profile.force_rnfd_when_clean);
  cfg.kv_replicas = 3 + static_cast<int>(g.below(3));
  cfg.kv_ops = 20 + static_cast<int>(g.below(31));
  return cfg;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  return cfg.mac == ScenarioMac::kTdma ? run_tdma(cfg) : run_mesh(cfg);
}

}  // namespace iiot::testing
