// Cross-layer invariant checkers for the property-based scenario fuzzer
// (DESIGN.md §4c). Each checker returns an empty string when the invariant
// holds and a human-readable description of the first violation otherwise,
// so the fuzz driver can report and shrink without exceptions.
//
// Two kinds live here:
//   * inspectors over a running world (medium bookkeeping, routing graph),
//     called at checkpoints while a scenario executes;
//   * self-contained property checks (scheduler semantics, fragmentation
//     round-trip, CRDT convergence, CP read-your-writes) that build their
//     own miniature world from a seed, so they compose into scenarios and
//     remain directly callable from unit tests.
#pragma once

#include <cstdint>
#include <string>

#include "core/network.hpp"
#include "obs/trace.hpp"
#include "radio/medium.hpp"

namespace iiot::testing {

/// Medium bookkeeping: dense index maps, reception lists vs. active
/// transmissions, receiver liveness (delegates to Medium).
std::string check_medium_consistency(const radio::Medium& medium);

/// Routing loop-freedom: following preferred-parent pointers from every
/// joined node must terminate (at the root, or at a node outside the
/// mesh) within mesh.size() hops.
std::string check_routing_acyclic(core::MeshNetwork& mesh);

/// Causal-trace well-formedness over everything a Tracer recorded: spans
/// close no earlier than they open, children start within their parent's
/// active window (they may end after it — layer handoffs are
/// asynchronous), every record tagged with a trace id can reach that
/// trace's origin, and only layers with legitimately in-flight work
/// (net/mac/radio) may hold open spans at end of run.
std::string check_trace_wellformed(const obs::Tracer& tracer);

/// Scheduler semantics under random schedule/cancel/fire churn: fired
/// events honor time order and never precede their schedule time,
/// cancelled events never fire, stale handles are inert after slot reuse.
std::string check_scheduler_properties(std::uint64_t seed);

/// Fragmentation round-trip: random datagrams fragmented, reordered and
/// duplicated must reassemble bit-exactly; truncated fragments must be
/// rejected as malformed without crashing.
std::string check_frag_roundtrip(std::uint64_t seed);

/// AP replicated KV: read-your-writes at every replica, and pairwise
/// convergence after a partition heals and anti-entropy runs.
std::string check_crdt_convergence(std::uint64_t seed, int replicas,
                                   int ops);

/// CP replicated KV: every write acknowledged to the client must be
/// readable at the primary afterwards, across a partition episode that
/// makes some writes fail.
std::string check_cp_read_your_writes(std::uint64_t seed, int replicas,
                                      int ops);

}  // namespace iiot::testing
