// Lane-invariance fuzzing for island-partitioned worlds (DESIGN.md §4i).
//
// One seed deterministically expands into a whole pdes::IslandWorld
// configuration — city shape, quantization window, propagation,
// frame-level fault injection, traffic pacing, an optional mid-run crash
// of a border node — which then runs twice: once on the serial oracle
// (lanes = 1) and once on the requested lane count. The two runs must
// produce equal world digests; any divergence is a conservative-PDES
// ordering bug by definition. This is the fuzzing counterpart of the
// deterministic test_pdes suites: those pin known-sharp corners, this
// searches the configuration space around them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "radio/fault_injector.hpp"
#include "sim/time.hpp"

namespace iiot::runner {
class Engine;
}

namespace iiot::testing {

/// One generated island-world scenario. Pure function of the seed (see
/// generate_pdes_scenario); replayable from the seed alone.
struct PdesScenarioConfig {
  std::uint64_t seed = 0;
  std::size_t islands_x = 2;
  std::size_t islands_y = 2;
  std::size_t island_side = 3;
  sim::Duration window = 1000;  // cross-island quantization window, µs
  double exponent = 3.0;
  double sigma_db = 0.0;
  radio::FaultInjectorConfig frame_faults;
  sim::Duration measure = 10'000'000;
  sim::Duration traffic_period = 2'000'000;
  /// Crash + restart the far corner of island 0 (a border-straddling
  /// node) mid-measure — the sharpest cross-island ordering corner.
  bool crash = false;

  [[nodiscard]] std::string summary() const;
};

/// Integer outcome of one run at one lane count. Equality of `digest`
/// across lane counts IS the invariance contract; the rest is context
/// for failure reports.
struct PdesRunOutcome {
  bool ok = true;
  std::string failure;  // consistency violation or setup failure
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t cross_island_rx = 0;
  std::uint64_t joined_permille = 0;
};

/// Expands a seed into an island-world scenario. Pure function.
[[nodiscard]] PdesScenarioConfig generate_pdes_scenario(std::uint64_t seed);

/// Runs the scenario at `lanes` execution lanes (0 = all cores) and
/// digests the world. Deterministic: same (cfg, any lanes) → same digest
/// unless the PDES engine is broken.
[[nodiscard]] PdesRunOutcome run_pdes_scenario(const PdesScenarioConfig& cfg,
                                               unsigned lanes);

struct PdesFuzzOptions {
  std::uint64_t runs = 40;
  std::uint64_t seed_base = 1;
  /// Lane count of the checked leg (0 = all cores). The reference leg is
  /// always lanes = 1.
  unsigned lanes = 4;
  std::uint64_t max_reported = 5;
};

struct PdesFuzzResult {
  /// Seeds whose serial and parallel digests diverged (or whose runs
  /// failed outright), ascending. Jobs-invariant.
  std::vector<std::uint64_t> failing_seeds;
  /// Serial-leg digest per seed, in seed order. Jobs-invariant.
  std::vector<std::uint64_t> digests;
  /// FAIL/reproducer lines for the first `max_reported` failures.
  std::string report;
  std::size_t scenarios_executed = 0;

  [[nodiscard]] bool ok() const { return failing_seeds.empty(); }
};

/// Runs the batch on `eng`: each seed executes both legs inside one task
/// and compares digests. Aggregation is slot-ordered, so failing seeds,
/// digests and the report are byte-identical at any --jobs value.
[[nodiscard]] PdesFuzzResult run_pdes_fuzz_batch(const PdesFuzzOptions& opt,
                                                 runner::Engine& eng);

}  // namespace iiot::testing
