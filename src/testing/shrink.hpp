// Greedy scenario shrinking: given a failing ScenarioConfig, repeatedly
// tries smaller variants (fewer nodes, shorter fault schedules, fewer
// fault kinds, fewer sub-checks) and keeps any that still fails. The
// result is the locally minimal reproducer reported next to the
// `--replay_seed` line.
//
// Candidate evaluation runs on the runner engine: each round speculates
// every applicable move against the current config in parallel, then
// accepts failing candidates in fixed move order (revalidating later ones
// against the updated config). The round structure is the algorithm — it
// is identical at jobs=1 and jobs=N, so the shrunk reproducer and the
// rerun count are byte-identical at any thread count.
#pragma once

#include <string>

#include "testing/scenario.hpp"

namespace iiot::runner {
class Engine;
}

namespace iiot::testing {

struct ShrinkResult {
  ScenarioConfig config;  // smallest still-failing variant found
  std::string failure;    // failure message of that variant
  int attempts = 0;       // scenario re-runs spent
  bool changed = false;   // false: the original was already minimal
};

/// Shrinks `failing` (which must fail when run) within a re-run budget.
/// Deterministic: candidates are tried in a fixed order and accepted on
/// any failure, so the same input always shrinks to the same output —
/// regardless of the engine's job count. `engine == nullptr` evaluates
/// candidates inline (equivalent to a 1-job engine).
[[nodiscard]] ShrinkResult shrink_scenario(const ScenarioConfig& failing,
                                           int budget = 48,
                                           runner::Engine* engine = nullptr);

}  // namespace iiot::testing
