#include "testing/invariants.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "replication/backend_net.hpp"
#include "replication/kv.hpp"
#include "sim/scheduler.hpp"
#include "transport/frag.hpp"

namespace iiot::testing {

using namespace sim;  // NOLINT: time literals (_s, _ms)

std::string check_medium_consistency(const radio::Medium& medium) {
  return medium.check_consistency();
}

std::string check_routing_acyclic(core::MeshNetwork& mesh) {
  std::unordered_map<NodeId, std::size_t> index;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    index[mesh.node(i).id] = i;
  }
  for (std::size_t start = 0; start < mesh.size(); ++start) {
    std::size_t at = start;
    for (std::size_t hops = 0; hops <= mesh.size(); ++hops) {
      const auto& r = *mesh.node(at).routing;
      if (r.is_root() || !r.joined()) goto next_start;  // terminated
      const NodeId parent = r.preferred_parent();
      auto it = index.find(parent);
      if (it == index.end()) goto next_start;  // parent outside the mesh
      at = it->second;
    }
    return "routing: parent chain from node " +
           std::to_string(mesh.node(start).id) + " does not terminate (loop)";
  next_start:;
  }
  return {};
}

std::string check_trace_wellformed(const obs::Tracer& tracer) {
  const std::vector<obs::SpanRecord>& recs = tracer.records();
  const auto describe = [&](std::size_t i) {
    const obs::SpanRecord& r = recs[i];
    return "span " + std::to_string(i + 1) + " (" +
           std::string(to_string(r.layer)) + "." + r.name + ", trace " +
           std::to_string(r.trace) + ", node " + std::to_string(r.node) +
           ")";
  };

  // Origins: start_trace records one before handing out the id, so every
  // id seen on any record must have one — drops can't lose an origin
  // because the id is never allocated when the origin can't be recorded.
  std::vector<bool> has_origin(tracer.traces_started() + 1, false);
  for (const obs::SpanRecord& r : recs) {
    if (r.trace != 0 && std::string_view(r.name) == "origin") {
      if (r.trace > tracer.traces_started()) {
        return "trace: origin carries unallocated trace id " +
               std::to_string(r.trace);
      }
      has_origin[r.trace] = true;
    }
  }

  for (std::size_t i = 0; i < recs.size(); ++i) {
    const obs::SpanRecord& r = recs[i];
    if (r.trace > tracer.traces_started()) {
      return "trace: " + describe(i) + " carries unallocated trace id";
    }
    if (r.trace != 0 && !has_origin[r.trace]) {
      return "trace: " + describe(i) + " has no origin record";
    }
    if (r.instant && (r.open || r.end != r.start)) {
      return "trace: instant " + describe(i) + " has a duration";
    }
    if (r.end < r.start) {
      return "trace: " + describe(i) + " ends before it starts";
    }
    if (r.open) {
      // Only layers with legitimately in-flight work at end of run —
      // queued MAC transmissions, frames on the air, pending forwarding
      // attempts — may leave spans open.
      if (r.layer != obs::Layer::kNet && r.layer != obs::Layer::kMac &&
          r.layer != obs::Layer::kRadio) {
        return "trace: open span at end of run in layer " +
               std::string(to_string(r.layer)) + ": " + describe(i);
      }
    }
    if (r.parent != 0) {
      if (r.parent > recs.size()) {
        return "trace: " + describe(i) + " references nonexistent parent " +
               std::to_string(r.parent);
      }
      // Refs are append-order indices, so a parent must precede its child;
      // this also rules out self-parenting and cycles.
      if (r.parent > i) {
        return "trace: " + describe(i) + " precedes its parent " +
               std::to_string(r.parent);
      }
      const obs::SpanRecord& p = recs[r.parent - 1];
      if (r.start < p.start) {
        return "trace: " + describe(i) + " starts before its parent";
      }
      // A child must start while its parent is active, but may end after
      // it: layer handoffs are asynchronous, so e.g. a broadcast request
      // completes at wake-interval end while the final radio copy is
      // still on the air. End containment is deliberately NOT required.
      if (!p.open && r.start > p.end) {
        return "trace: " + describe(i) + " starts after its parent ended";
      }
    }
  }
  return {};
}

std::string check_scheduler_properties(std::uint64_t seed) {
  Rng rng(seed, 7);
  sim::Scheduler sched;

  constexpr int kEvents = 256;
  struct Record {
    sim::Time at = 0;
    bool cancelled = false;
    bool fired = false;
    sim::EventHandle handle;
  };
  auto records = std::make_unique<std::vector<Record>>();
  records->reserve(kEvents);

  sim::Time last_fire = 0;
  std::string violation;
  for (int i = 0; i < kEvents; ++i) {
    const auto delay = static_cast<sim::Duration>(1 + rng.below(10'000));
    records->push_back(Record{delay, false, false, {}});
    const std::size_t idx = records->size() - 1;
    auto* recs = records.get();
    (*records)[idx].handle = sched.schedule_after(
        delay, [recs, idx, &last_fire, &sched, &violation] {
          Record& rec = (*recs)[idx];
          rec.fired = true;
          if (rec.cancelled) {
            violation = "scheduler: cancelled event fired";
          }
          if (sched.now() < last_fire) {
            violation = "scheduler: time ran backwards (" +
                        std::to_string(sched.now()) + " after " +
                        std::to_string(last_fire) + ")";
          }
          if (sched.now() < rec.at) {
            violation = "scheduler: event fired before its schedule time";
          }
          last_fire = sched.now();
        });
  }
  // Cancel a deterministic subset before anything runs.
  int cancelled = 0;
  for (Record& rec : *records) {
    if (rng.chance(0.4)) {
      rec.cancelled = true;
      rec.handle.cancel();
      ++cancelled;
      if (rec.handle.pending()) {
        return "scheduler: handle still pending after cancel()";
      }
    }
  }
  sched.run_all();
  if (!violation.empty()) return violation;
  for (const Record& rec : *records) {
    if (rec.cancelled && rec.fired) {
      return "scheduler: cancelled event fired";
    }
    if (!rec.cancelled && !rec.fired) {
      return "scheduler: live event never fired";
    }
    if (rec.handle.pending()) {
      return "scheduler: handle pending after queue drained";
    }
  }
  if (sched.executed_events() != static_cast<std::uint64_t>(kEvents -
                                                           cancelled)) {
    return "scheduler: executed " + std::to_string(sched.executed_events()) +
           " events, expected " + std::to_string(kEvents - cancelled);
  }

  // Handle-reuse safety: the (now recycled) slots behind the old handles
  // must not be cancellable through them once new tenants move in.
  std::vector<sim::EventHandle> fresh;
  int fresh_fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    fresh.push_back(sched.schedule_after(
        static_cast<sim::Duration>(1 + rng.below(1'000)),
        [&fresh_fired] { ++fresh_fired; }));
  }
  for (Record& rec : *records) rec.handle.cancel();  // all stale: no-ops
  sched.run_all();
  if (fresh_fired != kEvents) {
    return "scheduler: stale handle cancelled a recycled slot (" +
           std::to_string(fresh_fired) + "/" + std::to_string(kEvents) +
           " fresh events fired)";
  }
  return {};
}

std::string check_frag_roundtrip(std::uint64_t seed) {
  Rng rng(seed, 9);
  for (int trial = 0; trial < 4; ++trial) {
    sim::Scheduler sched;
    transport::Reassembler reasm(sched);

    std::size_t len = 1 + rng.below(600);
    const std::size_t mtu = transport::kFragHeader + 1 + rng.below(80);
    // fragment() carries index/count in one byte each: callers contract
    // to stay within 255 fragments (asserted in Debug, silent truncation
    // in Release). Keep the generated datagram inside that contract.
    len = std::min(len, (mtu - transport::kFragHeader) * 255);
    Buffer datagram(len);
    for (auto& b : datagram) b = static_cast<std::uint8_t>(rng.next_u32());
    const auto tag = static_cast<std::uint16_t>(rng.next_u32());

    std::vector<Buffer> frags = transport::fragment(datagram, mtu, tag);
    // Deterministic shuffle + duplication: reassembly must not care about
    // arrival order and must ignore repeats.
    std::vector<std::size_t> order(frags.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[rng.below(static_cast<std::uint32_t>(i))]);
    }
    const NodeId src = 7;
    std::optional<Buffer> out;
    std::size_t fed = 0;
    for (std::size_t i : order) {
      ++fed;
      auto r = reasm.on_fragment(src, frags[i]);
      if (rng.chance(0.3)) {
        auto dup = reasm.on_fragment(src, frags[i]);
        // A repeat of the *only* fragment legitimately forms a whole new
        // datagram (link-layer duplicate — upper layers dedup those); a
        // repeat of one piece of several must never complete anything.
        if (dup.has_value() && frags.size() > 1) {
          return "frag: duplicate fragment completed a second datagram";
        }
      }
      if (r.has_value()) {
        if (fed != frags.size()) {
          return "frag: datagram completed before all fragments arrived";
        }
        out = std::move(r);
      }
    }
    if (!out.has_value()) {
      return "frag: datagram never completed (len=" + std::to_string(len) +
             " mtu=" + std::to_string(mtu) + ")";
    }
    if (*out != datagram) {
      return "frag: reassembled bytes differ from the original";
    }

    // Truncated / malformed fragments must be rejected, not crash.
    const auto before = reasm.stats().malformed;
    Buffer junk(rng.below(static_cast<std::uint32_t>(
                    transport::kFragHeader)),
                0xEE);
    (void)reasm.on_fragment(src, junk);
    if (reasm.stats().malformed <= before) {
      return "frag: truncated fragment not counted as malformed";
    }
  }
  return {};
}

std::string check_crdt_convergence(std::uint64_t seed, int replicas,
                                   int ops) {
  using replication::ApReplica;
  using replication::BackendNet;
  using replication::ReplicaId;

  Rng rng(seed, 11);
  sim::Scheduler sched;
  replication::BackendNetConfig net_cfg;
  net_cfg.loss = rng.uniform(0.0, 0.15);
  BackendNet net(sched, rng.fork(1), net_cfg);

  std::vector<ReplicaId> ids;
  for (int i = 1; i <= replicas; ++i) ids.push_back(static_cast<ReplicaId>(i));
  std::vector<std::unique_ptr<ApReplica>> reps;
  for (ReplicaId id : ids) {
    reps.push_back(
        std::make_unique<ApReplica>(id, ids, net, sched, rng.fork(10 + id)));
    reps.back()->start();
  }

  // Random writes/removes spread over 20 s, with a partition in the
  // middle. Read-your-writes is checked synchronously at each put.
  std::string violation;
  for (int op = 0; op < ops; ++op) {
    const auto at = static_cast<sim::Time>(1'000'000 + rng.below(20'000'000));
    const auto who = rng.below(static_cast<std::uint32_t>(replicas));
    const std::string key = "k" + std::to_string(rng.below(8));
    if (rng.chance(0.2)) {
      sched.schedule_at(at, [&reps, who, key] { reps[who]->remove(key); });
    } else {
      const std::string value =
          "v" + std::to_string(op) + "-" + std::to_string(who);
      sched.schedule_at(at, [&reps, who, key, value, &violation] {
        reps[who]->put(key, value);
        auto got = reps[who]->get(key);
        if (!got.has_value() || *got != value) {
          violation = "crdt: read-your-writes violated at replica " +
                      std::to_string(reps[who]->id()) + " for " + key;
        }
      });
    }
  }
  const auto cut = 1 + rng.below(static_cast<std::uint32_t>(replicas - 1));
  std::vector<ReplicaId> left(ids.begin(), ids.begin() + cut);
  std::vector<ReplicaId> right(ids.begin() + cut, ids.end());
  sched.schedule_at(5_s, [&net, left, right] {
    net.set_partition({left, right});
  });
  sched.schedule_at(14_s, [&net] { net.heal(); });

  sched.run_until(60_s);  // generous anti-entropy time after heal
  if (!violation.empty()) return violation;

  for (std::size_t i = 1; i < reps.size(); ++i) {
    if (!reps[0]->same_state_as(*reps[i])) {
      return "crdt: replicas " + std::to_string(reps[0]->id()) + " and " +
             std::to_string(reps[i]->id()) +
             " diverge after partition heal + gossip";
    }
  }
  return {};
}

std::string check_cp_read_your_writes(std::uint64_t seed, int replicas,
                                      int ops) {
  using replication::BackendNet;
  using replication::CpReplica;
  using replication::ReplicaId;

  Rng rng(seed, 13);
  sim::Scheduler sched;
  BackendNet net(sched, rng.fork(1));

  std::vector<ReplicaId> ids;
  for (int i = 1; i <= replicas; ++i) ids.push_back(static_cast<ReplicaId>(i));
  const ReplicaId primary = 1;
  std::vector<std::unique_ptr<CpReplica>> reps;
  for (ReplicaId id : ids) {
    reps.push_back(std::make_unique<CpReplica>(id, primary, ids, net, sched,
                                               rng.fork(20 + id)));
    reps.back()->start();
  }

  // Sequential unique-key writes at the primary; a partition isolating
  // the primary mid-run makes a band of them fail.
  auto acked = std::make_unique<std::map<std::string, std::string>>();
  for (int op = 0; op < ops; ++op) {
    const auto at = static_cast<sim::Time>(500'000 +
                                           static_cast<sim::Time>(op) *
                                               400'000);
    const std::string key = "key-" + std::to_string(op);
    const std::string value = "value-" + std::to_string(op);
    auto* acks = acked.get();
    sched.schedule_at(at, [&reps, key, value, acks] {
      reps[0]->put(key, value, [key, value, acks](bool ok) {
        if (ok) (*acks)[key] = value;
      });
    });
  }
  const auto part_at = static_cast<sim::Time>(3_s + rng.below(5'000'000));
  sched.schedule_at(part_at, [&net, primary] {
    net.set_partition({{primary}});
  });
  sched.schedule_at(part_at + 6_s, [&net] { net.heal(); });

  sched.run_until(static_cast<sim::Time>(ops) * 400'000 + 20_s);

  if (acked->empty()) {
    return "cp: no write ever succeeded (expected successes before the "
           "partition)";
  }
  for (const auto& [key, value] : *acked) {
    auto got = reps[0]->get(key);
    if (!got.has_value() || *got != value) {
      return "cp: acknowledged write " + key +
             " not readable at the primary";
    }
  }
  return {};
}

}  // namespace iiot::testing
