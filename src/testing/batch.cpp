#include "testing/batch.hpp"

#include <cstdio>

#include "runner/engine.hpp"
#include "testing/shrink.hpp"

namespace iiot::testing {

namespace {

/// One failure's report block, formatted exactly like the historical
/// serial fuzz driver so reproducer lines stay grep-stable.
std::string format_failure(const ScenarioConfig& cfg, const ScenarioResult& r,
                           const FuzzBatchOptions& opt,
                           runner::Engine& eng) {
  std::string out;
  char buf[160];
  out += "FAIL  " + cfg.summary() + "\n";
  out += "      " + r.failure + "\n";
  // Profiled batches must replay under the same generator constraints,
  // so the reproducer line carries the scenario-family name along.
  std::string extra;
  if (!opt.profile_name.empty()) extra += " --scenario=" + opt.profile_name;
  if (cfg.canary_skip_detach_cleanup) extra += " --canary";
  std::snprintf(buf, sizeof buf,
                "      reproduce: iiot_fuzz --replay_seed=%llu%s\n",
                static_cast<unsigned long long>(cfg.seed), extra.c_str());
  out += buf;
  if (opt.shrink) {
    const ShrinkResult shrunk = shrink_scenario(cfg, opt.shrink_budget, &eng);
    std::snprintf(buf, sizeof buf, "      shrunk (%d reruns): ",
                  shrunk.attempts);
    out += buf;
    out += shrunk.config.summary() + "\n";
    out += "      shrunk failure: " + shrunk.failure + "\n";
  }
  return out;
}

}  // namespace

FuzzBatchResult run_fuzz_batch(const FuzzBatchOptions& opt,
                               runner::Engine& eng) {
  const auto n = static_cast<std::size_t>(opt.runs);
  FuzzBatchResult out;

  // Scenario expansion is a pure function of the seed and cheap next to a
  // run, so the whole batch's configs (and the MAC mix) are materialized
  // up front regardless of how much of it executes.
  std::vector<ScenarioConfig> cfgs(n);
  for (std::size_t i = 0; i < n; ++i) {
    cfgs[i] = generate_scenario(opt.seed_base + i, opt.profile);
    if (opt.canary) cfgs[i].canary_skip_detach_cleanup = true;
    ++out.by_mac[static_cast<int>(cfgs[i].mac)];
  }

  // One slot per seed. In canary mode the batch stops claiming seeds once
  // any worker catches the planted bug; ascending claims guarantee every
  // seed below the first catch still runs, so the first-failure scan
  // below is exact at any job count.
  std::vector<ScenarioResult> results(n);
  runner::Engine::StopAfter stop;
  if (opt.canary) {
    stop = [&results](std::size_t i) { return !results[i].ok; };
  }
  out.scenarios_executed = eng.run(
      n, [&](std::size_t i) { results[i] = run_scenario(cfgs[i]); }, stop);

  // ---- slot-ordered aggregation (the jobs-invariant part) -------------
  std::size_t limit = n;
  if (opt.canary) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!results[i].ok) {
        limit = i + 1;  // one caught bug is proof enough
        break;
      }
    }
  }
  out.fingerprints.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    out.fingerprints.push_back(results[i].fingerprint);
    if (!results[i].ok) out.failing_seeds.push_back(cfgs[i].seed);
  }
  std::size_t reported = 0;
  for (std::size_t i = 0; i < limit && reported < opt.max_reported; ++i) {
    if (results[i].ok) continue;
    out.report += format_failure(cfgs[i], results[i], opt, eng);
    ++reported;
  }
  return out;
}

std::string check_batch_determinism(const FuzzBatchOptions& opt,
                                    runner::Engine& eng) {
  runner::Engine serial(1);
  const FuzzBatchResult a = run_fuzz_batch(opt, serial);
  const FuzzBatchResult b = run_fuzz_batch(opt, eng);

  if (a.failing_seeds != b.failing_seeds) {
    return "failing-seed lists diverge: serial has " +
           std::to_string(a.failing_seeds.size()) + ", jobs=" +
           std::to_string(eng.jobs()) + " has " +
           std::to_string(b.failing_seeds.size());
  }
  if (a.fingerprints.size() != b.fingerprints.size()) {
    return "fingerprint counts diverge: " +
           std::to_string(a.fingerprints.size()) + " vs " +
           std::to_string(b.fingerprints.size());
  }
  for (std::size_t i = 0; i < a.fingerprints.size(); ++i) {
    if (!(a.fingerprints[i] == b.fingerprints[i])) {
      return "fingerprint diverges at seed " +
             std::to_string(opt.seed_base + i) +
             "\n  serial:   " + a.fingerprints[i].to_string() +
             "\n  parallel: " + b.fingerprints[i].to_string();
    }
  }
  if (a.report != b.report) {
    return "failure report text diverges\n--- serial ---\n" + a.report +
           "--- jobs=" + std::to_string(eng.jobs()) + " ---\n" + b.report;
  }
  return {};
}

}  // namespace iiot::testing
