// Property-based scenario fuzzing (DESIGN.md §4c).
//
// One seed deterministically expands into a whole-stack scenario — MAC
// choice, topology, propagation, traffic, crash schedules, frame-level
// fault injection, membership churn — which then runs through formation,
// fault and heal phases with cross-layer invariants checked at
// checkpoints throughout. Everything derives from the seed, so any
// failure reproduces bit-identically from `--replay_seed=N` alone; the
// Fingerprint (pure integer counters) is how replay identity is proven.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "radio/fault_injector.hpp"
#include "sim/time.hpp"

namespace iiot::testing {

enum class ScenarioMac { kCsma, kLpl, kRiMac, kTdma };
enum class ScenarioTopology { kLine, kGrid, kRandomField };

[[nodiscard]] const char* to_string(ScenarioMac m);
[[nodiscard]] const char* to_string(ScenarioTopology t);

/// One node's crash/reboot schedule (drives a dependability::CrashProcess
/// during the fault phase). Index 0 — the root — is never crashed here;
/// root-failure detection has its own scenarios and benches.
struct CrashPlan {
  std::size_t node_index = 1;
  double mttf_s = 10.0;
  double mttr_s = 5.0;
  bool repair = true;
};

struct ScenarioConfig {
  std::uint64_t seed = 0;
  ScenarioMac mac = ScenarioMac::kCsma;
  ScenarioTopology topology = ScenarioTopology::kLine;
  std::size_t nodes = 6;
  /// Line spacing / grid pitch / random-field side scale, meters.
  double spacing = 18.0;
  double sigma_db = 0.0;
  double exponent = 3.0;

  sim::Duration form_time = 25'000'000;
  sim::Duration fault_time = 30'000'000;
  sim::Duration heal_time = 45'000'000;
  sim::Duration traffic_period = 1'500'000;

  std::vector<CrashPlan> crashes;
  radio::FaultInjectorConfig frame_faults;
  /// Times during the fault phase when a transient radio attaches, then
  /// detaches while frames are on the air (exercises detach cleanup).
  int churn_slots = 0;

  // Self-contained cross-layer property checks folded into the scenario.
  bool run_sched_check = true;
  bool run_frag = false;
  bool run_crdt = false;
  bool run_cp = false;
  /// RNFD false-positive watch: only generated for clean scenarios
  /// (no crashes, no frame faults), where "root never declared dead"
  /// must hold.
  bool run_rnfd = false;
  int kv_replicas = 5;
  int kv_ops = 30;

  /// Canary (harness validation): makes Medium::detach skip reception
  /// bookkeeping cleanup — the planted bug the fuzzer must catch.
  bool canary_skip_detach_cleanup = false;

  /// Print a routing snapshot per checkpoint to stderr (replay debugging;
  /// not part of the generated scenario or the fingerprint).
  bool trace = false;

  [[nodiscard]] std::string summary() const;
};

/// Pure-integer digest of a run. Two runs of the same config must produce
/// operator==-identical fingerprints; this is the replay-determinism
/// invariant itself.
struct Fingerprint {
  std::uint64_t final_time = 0;
  std::uint64_t events = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t snr_losses = 0;
  std::uint64_t aborted = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_dups = 0;
  std::uint64_t fault_delays = 0;
  std::uint64_t mac_delivered = 0;
  std::uint64_t root_rx = 0;
  std::uint64_t parent_changes = 0;
  std::uint64_t joined_permille = 0;
  std::uint64_t crash_failures = 0;
  std::uint64_t injected_faults = 0;
  std::uint64_t transient_loops = 0;
  std::uint64_t checks_passed = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;
  [[nodiscard]] std::string to_string() const;
};

struct ScenarioResult {
  bool ok = true;
  std::string failure;  // empty iff ok
  Fingerprint fingerprint;
};

/// Constraints a curated scenario family (src/scenarios/) imposes on the
/// generator — the library's bridge back into the fuzzer
/// (`iiot_fuzz --scenario=NAME`). Unset fields keep the generator's own
/// distribution; draws happen in the same order either way, so an empty
/// profile reproduces generate_scenario(seed) exactly.
struct FuzzProfile {
  std::optional<ScenarioMac> mac;
  std::optional<ScenarioTopology> topology;
  /// Node-count range (inclusive); 0 = generator default for the MAC.
  std::size_t min_nodes = 0;
  std::size_t max_nodes = 0;
  /// Floor on membership-churn episodes during the fault window.
  int min_churn_slots = 0;
  /// Always fold in the CRDT convergence check (yard worlds).
  bool force_crdt = false;
  /// Run the RNFD false-positive watch whenever the generated scenario
  /// is clean (mine worlds; still skipped for TDMA, which has no RPL).
  bool force_rnfd_when_clean = false;
};

/// Expands a seed into a scenario. Pure function of the seed.
[[nodiscard]] ScenarioConfig generate_scenario(std::uint64_t seed);
/// Same, under a scenario family's constraints. Pure in (seed, profile).
[[nodiscard]] ScenarioConfig generate_scenario(std::uint64_t seed,
                                               const FuzzProfile& profile);

/// Runs a scenario to completion (or first invariant violation).
/// Deterministic: same config → same result and fingerprint.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& cfg);

}  // namespace iiot::testing
