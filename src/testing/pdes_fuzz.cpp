#include "testing/pdes_fuzz.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "pdes/world.hpp"
#include "runner/engine.hpp"

namespace iiot::testing {

namespace {

/// Steps the world in 1 s chunks, auditing every island medium's
/// bookkeeping at each boundary.
std::string advance(pdes::IslandWorld& world, sim::Time to) {
  while (world.now() < to) {
    world.run_until(std::min<sim::Time>(to, world.now() + 1'000'000));
    if (auto v = world.check_consistency(); !v.empty()) return v;
  }
  return {};
}

}  // namespace

std::string PdesScenarioConfig::summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "seed=%llu city=%zux%zu side=%zu window=%lldus exp=%.2f sigma=%.1f "
      "drop=%.3f corrupt=%.3f dup=%.3f delay=%.3f measure=%llds "
      "period=%lldms%s",
      static_cast<unsigned long long>(seed), islands_x, islands_y,
      island_side, static_cast<long long>(window), exponent, sigma_db,
      frame_faults.drop_p, frame_faults.corrupt_p, frame_faults.duplicate_p,
      frame_faults.delay_p, static_cast<long long>(measure / 1'000'000),
      static_cast<long long>(traffic_period / 1'000), crash ? " crash" : "");
  return buf;
}

PdesScenarioConfig generate_pdes_scenario(std::uint64_t seed) {
  Rng g(seed, 0x15D);
  PdesScenarioConfig cfg;
  cfg.seed = seed;
  // Shapes from 1x2 up to 3x3 patches: always at least two islands (a
  // one-island world has no cross-island physics to get wrong).
  do {
    cfg.islands_x = static_cast<std::size_t>(g.range(1, 3));
    cfg.islands_y = static_cast<std::size_t>(g.range(1, 3));
  } while (cfg.islands_x * cfg.islands_y < 2);
  cfg.island_side = static_cast<std::size_t>(g.range(2, 4));
  const sim::Duration windows[] = {500, 1000, 2000};
  cfg.window = windows[g.below(3)];
  cfg.exponent = g.uniform(2.8, 3.2);
  cfg.sigma_db = g.chance(0.3) ? g.uniform(0.5, 2.0) : 0.0;
  if (g.chance(0.5)) cfg.frame_faults.drop_p = g.uniform(0.0, 0.05);
  if (g.chance(0.3)) cfg.frame_faults.corrupt_p = g.uniform(0.0, 0.03);
  if (g.chance(0.4)) cfg.frame_faults.duplicate_p = g.uniform(0.0, 0.05);
  if (g.chance(0.4)) cfg.frame_faults.delay_p = g.uniform(0.0, 0.05);
  cfg.measure = 6'000'000 + static_cast<sim::Duration>(g.range(0, 6)) *
                                1'000'000;
  cfg.traffic_period = 1'000'000 + static_cast<sim::Duration>(
                                       g.range(0, 4)) * 500'000;
  cfg.crash = g.chance(0.5);
  return cfg;
}

PdesRunOutcome run_pdes_scenario(const PdesScenarioConfig& cfg,
                                 unsigned lanes) {
  PdesRunOutcome out;
  pdes::IslandWorldConfig wc;
  wc.islands_x = cfg.islands_x;
  wc.islands_y = cfg.islands_y;
  wc.island_side = cfg.island_side;
  wc.window = cfg.window;
  wc.lanes = lanes;
  wc.seed = cfg.seed;
  wc.radio_cfg.exponent = cfg.exponent;
  wc.radio_cfg.shadowing_sigma_db = cfg.sigma_db;
  // Ack patience must track the generated window, not the default one
  // (see IslandWorldConfig::node_config).
  wc.node.csma.ack_timeout = 6 * cfg.window;
  const radio::FaultInjectorConfig none{};
  if (cfg.frame_faults.drop_p > 0.0 || cfg.frame_faults.corrupt_p > 0.0 ||
      cfg.frame_faults.duplicate_p > 0.0 || cfg.frame_faults.delay_p > 0.0) {
    wc.faults = cfg.frame_faults;
  }

  pdes::IslandWorld world(wc);
  world.start();

  // Formation: fixed budget plus joined-graces. The generated worlds are
  // small (diameter well under the city tier), so this either converges
  // quickly or the topology is genuinely partitioned (heavy shadowing) —
  // both are valid invariance subjects, so joining is NOT a pass/fail
  // criterion here.
  if (auto v = advance(world, 20'000'000); !v.empty()) {
    out.ok = false;
    out.failure = "formation: " + v;
    return out;
  }
  for (int grace = 0; grace < 4 && world.joined_fraction() < 1.0; ++grace) {
    if (auto v = advance(world, world.now() + 5'000'000); !v.empty()) {
      out.ok = false;
      out.failure = "formation: " + v;
      return out;
    }
  }

  // Paced upward traffic from every joined node, scheduled on each node's
  // own island scheduler (phases spread with a prime stride).
  const sim::Time start = world.now();
  const sim::Time end = start + cfg.measure;
  for (std::size_t i = 0; i < world.size(); ++i) {
    if (i == world.root_index()) continue;
    core::MeshNode* node = &world.node(i);
    sim::Scheduler& sched = world.scheduler(world.island_of(i));
    std::uint32_t seq = 0;
    const sim::Time phase =
        100'000 + (static_cast<sim::Time>(i) * 7'919) % cfg.traffic_period;
    for (sim::Time t = start + phase; t < end; t += cfg.traffic_period) {
      const std::uint32_t s = seq++;
      sched.schedule_at(t, [node, i, s] {
        if (!node->routing->joined()) return;
        Buffer pl = {static_cast<std::uint8_t>(i),
                     static_cast<std::uint8_t>(s),
                     static_cast<std::uint8_t>(s >> 8), 0x5A};
        (void)node->routing->send_up(std::move(pl));
      });
    }
  }

  if (cfg.crash) {
    // Island 0's far corner borders two neighbor patches; measure times
    // are whole seconds, so the crash and restart land exactly on window
    // boundaries.
    const std::size_t victim = cfg.island_side * cfg.island_side - 1;
    const sim::Time crash_at = start + cfg.measure / 3;
    if (auto v = advance(world, crash_at); !v.empty()) {
      out.ok = false;
      out.failure = "pre-crash: " + v;
      return out;
    }
    world.node(victim).stop();
    if (auto v = advance(world, crash_at + 3'000'000); !v.empty()) {
      out.ok = false;
      out.failure = "crashed: " + v;
      return out;
    }
    world.node(victim).start(false);
  }
  if (auto v = advance(world, end); !v.empty()) {
    out.ok = false;
    out.failure = "measure: " + v;
    return out;
  }

  out.digest = world.digest();
  out.events = world.executed_events();
  out.cross_island_rx = world.medium_stats().cross_island_rx;
  out.joined_permille =
      static_cast<std::uint64_t>(world.joined_fraction() * 1000.0);
  world.stop();
  return out;
}

PdesFuzzResult run_pdes_fuzz_batch(const PdesFuzzOptions& opt,
                                   runner::Engine& eng) {
  const auto n = static_cast<std::size_t>(opt.runs);
  PdesFuzzResult out;

  struct Slot {
    PdesScenarioConfig cfg;
    PdesRunOutcome serial;
    PdesRunOutcome parallel;
  };
  std::vector<Slot> slots(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots[i].cfg = generate_pdes_scenario(opt.seed_base + i);
  }

  // Both legs of one seed run inside one task: the comparison needs them
  // together, and nesting lanes under engine workers is the production
  // shape anyway (a suite of island worlds on a multicore box).
  out.scenarios_executed = eng.run(n, [&](std::size_t i) {
    slots[i].serial = run_pdes_scenario(slots[i].cfg, 1);
    slots[i].parallel = run_pdes_scenario(slots[i].cfg, opt.lanes);
  });

  // ---- slot-ordered aggregation (the jobs-invariant part) -------------
  std::size_t reported = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& s = slots[i];
    out.digests.push_back(s.serial.digest);
    std::string why;
    if (!s.serial.ok) {
      why = "serial leg failed: " + s.serial.failure;
    } else if (!s.parallel.ok) {
      why = "parallel leg failed: " + s.parallel.failure;
    } else if (s.serial.digest != s.parallel.digest) {
      char buf[192];
      std::snprintf(buf, sizeof buf,
                    "lane-invariance violated: digest %016llx (lanes=1) vs "
                    "%016llx (lanes=%u), events %llu vs %llu",
                    static_cast<unsigned long long>(s.serial.digest),
                    static_cast<unsigned long long>(s.parallel.digest),
                    opt.lanes,
                    static_cast<unsigned long long>(s.serial.events),
                    static_cast<unsigned long long>(s.parallel.events));
      why = buf;
    }
    if (why.empty()) continue;
    out.failing_seeds.push_back(s.cfg.seed);
    if (reported++ < opt.max_reported) {
      char buf[128];
      out.report += "FAIL  " + s.cfg.summary() + "\n";
      out.report += "      " + why + "\n";
      std::snprintf(
          buf, sizeof buf,
          "      reproduce: iiot_fuzz --islands=%u --replay_seed=%llu\n",
          opt.lanes, static_cast<unsigned long long>(s.cfg.seed));
      out.report += buf;
    }
  }
  return out;
}

}  // namespace iiot::testing
