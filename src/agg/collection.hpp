// Epoch-based data collection over the RPL DODAG: raw vs in-network
// aggregated, the two sides of experiment E3 (§IV-B: "by utilizing
// in-network aggregation ... it is possible to alleviate the effects of
// the heavy load in the vicinity of border routers").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "agg/aggregate.hpp"
#include "net/rpl.hpp"
#include "sim/scheduler.hpp"

namespace iiot::agg {

/// Produces the node's sensor reading for the current epoch.
using SampleFn = std::function<double()>;

struct CollectionConfig {
  sim::Duration epoch = 30'000'000;   // 30 s sampling epoch
  /// Holddown: a node that has data for an epoch waits this long for
  /// more children's partials to merge before forwarding one hop.
  sim::Duration flush_slack = 400'000;
  sim::Duration sample_jitter = 2'000'000;
};

/// Baseline: every node ships its raw reading to the root each epoch.
/// Root-side handler receives (epoch, origin, value).
class RawCollection {
 public:
  using RootHandler =
      std::function<void(std::uint32_t epoch, NodeId origin, double value)>;

  RawCollection(net::RplRouting& routing, sim::Scheduler& sched, Rng rng,
                CollectionConfig cfg = {});

  void start(SampleFn sample);          // on sensor nodes
  void start_sink(RootHandler handler); // on the root
  void stop();

  [[nodiscard]] std::uint64_t samples_sent() const { return sent_; }

 private:
  void on_epoch();

  net::RplRouting& routing_;
  sim::Scheduler& sched_;
  Rng rng_;
  CollectionConfig cfg_;
  SampleFn sample_;
  RootHandler handler_;
  bool running_ = false;
  std::uint32_t epoch_no_ = 0;
  std::uint64_t sent_ = 0;
  sim::EventHandle timer_;
};

/// In-network aggregation: each node merges its subtree's partials and
/// emits one constant-size record per epoch. Root-side handler receives
/// the network-wide aggregate.
class TreeAggregation {
 public:
  using RootHandler =
      std::function<void(std::uint32_t epoch, const PartialAggregate&)>;

  TreeAggregation(net::RplRouting& routing, sim::Scheduler& sched, Rng rng,
                  CollectionConfig cfg = {});

  void start(SampleFn sample);
  void start_sink(RootHandler handler);
  void stop();

  [[nodiscard]] std::uint64_t partials_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t partials_merged() const { return merged_; }

 private:
  void on_epoch_boundary();
  void flush(std::uint32_t epoch);
  bool intercept(NodeId origin, BytesView payload);

  net::RplRouting& routing_;
  sim::Scheduler& sched_;
  Rng rng_;
  CollectionConfig cfg_;
  SampleFn sample_;
  RootHandler handler_;
  bool running_ = false;
  bool is_sink_ = false;
  std::uint32_t epoch_no_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t merged_ = 0;
  std::map<std::uint32_t, PartialAggregate> pending_;  // epoch -> partial
  std::map<std::uint32_t, sim::EventHandle> holddowns_;
  sim::EventHandle timer_;
};

}  // namespace iiot::agg
