#include "agg/collection.hpp"

#include <algorithm>

#include <utility>

namespace iiot::agg {

namespace {
constexpr std::uint8_t kTagRaw = 'R';
constexpr std::uint8_t kTagAgg = 'A';
}  // namespace

// ------------------------------------------------------------------- raw

RawCollection::RawCollection(net::RplRouting& routing, sim::Scheduler& sched,
                             Rng rng, CollectionConfig cfg)
    : routing_(routing), sched_(sched), rng_(rng), cfg_(cfg) {}

void RawCollection::start(SampleFn sample) {
  running_ = true;
  sample_ = std::move(sample);
  const sim::Time next =
      ((sched_.now() / cfg_.epoch) + 1) * cfg_.epoch +
      rng_.below(static_cast<std::uint32_t>(cfg_.sample_jitter));
  timer_ = sched_.schedule_at(next, [this] { on_epoch(); });
}

void RawCollection::start_sink(RootHandler handler) {
  running_ = true;
  handler_ = std::move(handler);
  routing_.set_delivery_handler(
      [this](NodeId origin, BytesView payload, std::uint8_t) {
        BufReader r(payload);
        auto tag = r.u8();
        auto epoch = r.u32();
        auto value = r.f64();
        if (!tag || *tag != kTagRaw || !epoch || !value) return;
        if (handler_) handler_(*epoch, origin, *value);
      });
}

void RawCollection::stop() {
  running_ = false;
  timer_.cancel();
}

void RawCollection::on_epoch() {
  if (!running_) return;
  const sim::Time next =
      ((sched_.now() / cfg_.epoch) + 1) * cfg_.epoch +
      rng_.below(static_cast<std::uint32_t>(cfg_.sample_jitter));
  timer_ = sched_.schedule_at(next, [this] { on_epoch(); });

  epoch_no_ = static_cast<std::uint32_t>(sched_.now() / cfg_.epoch);
  Buffer out;
  BufWriter w(out);
  w.u8(kTagRaw);
  w.u32(epoch_no_);
  w.f64(sample_ ? sample_() : 0.0);
  if (routing_.send_up(std::move(out))) ++sent_;
}

// ----------------------------------------------------------- aggregation

TreeAggregation::TreeAggregation(net::RplRouting& routing,
                                 sim::Scheduler& sched, Rng rng,
                                 CollectionConfig cfg)
    : routing_(routing), sched_(sched), rng_(rng), cfg_(cfg) {}

void TreeAggregation::start(SampleFn sample) {
  running_ = true;
  is_sink_ = false;
  sample_ = std::move(sample);
  routing_.set_forward_interceptor(
      [this](NodeId origin, BytesView p) { return intercept(origin, p); });
  const sim::Time next = ((sched_.now() / cfg_.epoch) + 1) * cfg_.epoch;
  timer_ = sched_.schedule_at(next, [this] { on_epoch_boundary(); });
}

void TreeAggregation::start_sink(RootHandler handler) {
  running_ = true;
  is_sink_ = true;
  handler_ = std::move(handler);
  routing_.set_forward_interceptor(
      [this](NodeId origin, BytesView p) { return intercept(origin, p); });
  const sim::Time next = ((sched_.now() / cfg_.epoch) + 1) * cfg_.epoch;
  timer_ = sched_.schedule_at(next, [this] { on_epoch_boundary(); });
}

void TreeAggregation::stop() {
  running_ = false;
  timer_.cancel();
  for (auto& [_, h] : holddowns_) h.cancel();
  holddowns_.clear();
}

void TreeAggregation::on_epoch_boundary() {
  if (!running_) return;
  const sim::Time boundary = sched_.now();
  timer_ =
      sched_.schedule_at(boundary + cfg_.epoch, [this] { on_epoch_boundary(); });
  const auto epoch = static_cast<std::uint32_t>(boundary / cfg_.epoch);
  epoch_no_ = epoch;

  if (is_sink_) {
    // Report with one full epoch of grace: stragglers that missed their
    // own epoch's flush ride the next one, so epoch k is complete by the
    // end of epoch k+1.
    sched_.schedule_after(cfg_.flush_slack, [this, epoch] {
      if (!running_ || epoch < 2) return;
      const std::uint32_t target = epoch - 2;
      auto it = pending_.find(target);
      PartialAggregate result;
      if (it != pending_.end()) {
        result = it->second;
        pending_.erase(it);
      }
      if (handler_) handler_(target, result);
    });
    return;
  }

  // Sensor node: sample early in the epoch...
  const auto jitter = static_cast<sim::Duration>(
      rng_.below(static_cast<std::uint32_t>(cfg_.sample_jitter)));
  sched_.schedule_after(jitter, [this, epoch] {
    if (!running_) return;
    pending_[epoch].add_sample(sample_ ? sample_() : 0.0);
  });
  // ... and flush near the epoch's end, staggered by *true* hop depth
  // (advertised in DIOs) so children flush one slack before their
  // parents and partials pipeline to the root within the same epoch.
  const std::uint8_t depth =
      routing_.hop_depth() == 0xFF ? 1 : routing_.hop_depth();
  const sim::Duration before_end = std::min<sim::Duration>(
      cfg_.flush_slack * static_cast<sim::Duration>(depth + 1),
      cfg_.epoch / 2);
  // Jitter within the tier: all depth-d nodes share a flush tier, and
  // without jitter they would transmit at the same instant and collide.
  const auto flush_jitter = static_cast<sim::Duration>(
      rng_.below(static_cast<std::uint32_t>(
          std::max<sim::Duration>(cfg_.flush_slack / 2, 1))));
  holddowns_[epoch] =
      sched_.schedule_at(boundary + cfg_.epoch - before_end + flush_jitter,
                         [this, epoch] { flush(epoch); });
}

void TreeAggregation::flush(std::uint32_t epoch) {
  if (!running_ || is_sink_) return;
  holddowns_.erase(epoch);
  // Ship everything at or before this epoch: late child partials ride
  // the next flush instead of being dropped.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first > epoch || it->second.empty()) {
      ++it;
      continue;
    }
    Buffer out;
    BufWriter w(out);
    w.u8(kTagAgg);
    w.u32(it->first);
    it->second.encode(w);
    it = pending_.erase(it);
    if (routing_.send_up(std::move(out))) ++sent_;
  }
}

bool TreeAggregation::intercept(NodeId origin, BytesView payload) {
  (void)origin;
  if (!running_) return false;
  BufReader r(payload);
  auto tag = r.u8();
  if (!tag || *tag != kTagAgg) return false;  // not ours: forward normally
  auto epoch = r.u32();
  if (!epoch) return true;  // malformed aggregation record: drop
  auto partial = PartialAggregate::decode(r);
  if (!partial) return true;
  pending_[*epoch].merge(*partial);
  ++merged_;
  return true;  // consumed at this hop
}

}  // namespace iiot::agg
