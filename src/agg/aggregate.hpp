// Decomposable partial aggregates (TinyDB-class [31]).
//
// MIN/MAX/SUM/COUNT/AVG are all decomposable: partial states merge
// associatively, so each hop of the collection tree can combine its
// subtree into a constant-size record. That constant size — versus the
// O(subtree) cost of raw collection — is the whole point of bench E3.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>

#include "common/bytes.hpp"

namespace iiot::agg {

enum class AggFn : std::uint8_t { kMin, kMax, kSum, kCount, kAvg };

struct PartialAggregate {
  std::uint32_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add_sample(double v) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  void merge(const PartialAggregate& o) {
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  [[nodiscard]] bool empty() const { return count == 0; }

  [[nodiscard]] double evaluate(AggFn fn) const {
    switch (fn) {
      case AggFn::kMin: return min;
      case AggFn::kMax: return max;
      case AggFn::kSum: return sum;
      case AggFn::kCount: return static_cast<double>(count);
      case AggFn::kAvg:
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    return 0.0;
  }

  /// 28 bytes on the wire, independent of subtree size.
  void encode(BufWriter& w) const {
    w.u32(count);
    w.f64(sum);
    w.f64(min);
    w.f64(max);
  }

  static std::optional<PartialAggregate> decode(BufReader& r) {
    auto c = r.u32();
    auto s = r.f64();
    auto mn = r.f64();
    auto mx = r.f64();
    if (!c || !s || !mn || !mx) return std::nullopt;
    PartialAggregate p;
    p.count = *c;
    p.sum = *s;
    p.min = *mn;
    p.max = *mx;
    return p;
  }
};

}  // namespace iiot::agg
