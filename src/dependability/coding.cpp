#include "dependability/coding.hpp"

#include <vector>

namespace iiot::dependability {

namespace {

/// Encodes a 4-bit nibble into a 7-bit Hamming codeword
/// (p1 p2 d1 p3 d2 d3 d4, even parity).
std::uint8_t hamming_encode_nibble(std::uint8_t nib) {
  const int d1 = (nib >> 3) & 1, d2 = (nib >> 2) & 1, d3 = (nib >> 1) & 1,
            d4 = nib & 1;
  const int p1 = d1 ^ d2 ^ d4;
  const int p2 = d1 ^ d3 ^ d4;
  const int p3 = d2 ^ d3 ^ d4;
  return static_cast<std::uint8_t>((p1 << 6) | (p2 << 5) | (d1 << 4) |
                                   (p3 << 3) | (d2 << 2) | (d3 << 1) | d4);
}

/// Decodes one codeword, correcting a single bit error if present.
std::uint8_t hamming_decode_word(std::uint8_t w, int& corrections) {
  auto bit = [&w](int pos) { return (w >> (7 - pos)) & 1; };  // 1-based
  const int s1 = bit(1) ^ bit(3) ^ bit(5) ^ bit(7);
  const int s2 = bit(2) ^ bit(3) ^ bit(6) ^ bit(7);
  const int s3 = bit(4) ^ bit(5) ^ bit(6) ^ bit(7);
  const int syndrome = (s3 << 2) | (s2 << 1) | s1;
  if (syndrome != 0) {
    w ^= static_cast<std::uint8_t>(1 << (7 - syndrome));
    ++corrections;
  }
  auto b = [&w](int pos) { return (w >> (7 - pos)) & 1; };
  return static_cast<std::uint8_t>((b(3) << 3) | (b(5) << 2) | (b(6) << 1) |
                                   b(7));
}

/// Bit-stream writer/reader over a Buffer.
struct BitWriter {
  Buffer out;
  int bits = 0;
  void push(int bit) {
    if (bits % 8 == 0) out.push_back(0);
    if (bit) out.back() |= static_cast<std::uint8_t>(1 << (7 - bits % 8));
    ++bits;
  }
};

struct BitReader {
  BytesView in;
  std::size_t pos = 0;
  int get() {
    if (pos / 8 >= in.size()) return 0;
    const int b = (in[pos / 8] >> (7 - pos % 8)) & 1;
    ++pos;
    return b;
  }
};

}  // namespace

Buffer HammingCode::encode(BytesView data) const {
  // Produce the stream of 7-bit codewords.
  std::vector<std::uint8_t> words;
  words.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    words.push_back(hamming_encode_nibble(byte >> 4));
    words.push_back(hamming_encode_nibble(byte & 0x0F));
  }
  // Interleave: emit bit j of each word in a group before bit j+1.
  BitWriter bw;
  for (std::size_t base = 0; base < words.size();
       base += static_cast<std::size_t>(depth_)) {
    const std::size_t group =
        std::min<std::size_t>(static_cast<std::size_t>(depth_),
                              words.size() - base);
    for (int bitpos = 0; bitpos < 7; ++bitpos) {
      for (std::size_t k = 0; k < group; ++k) {
        bw.push((words[base + k] >> (6 - bitpos)) & 1);
      }
    }
  }
  return bw.out;
}

HammingCode::Decoded HammingCode::decode(BytesView coded,
                                         std::size_t original_size) const {
  const std::size_t word_count = original_size * 2;
  std::vector<std::uint8_t> words(word_count, 0);
  BitReader br{coded};
  for (std::size_t base = 0; base < word_count;
       base += static_cast<std::size_t>(depth_)) {
    const std::size_t group =
        std::min<std::size_t>(static_cast<std::size_t>(depth_),
                              word_count - base);
    for (int bitpos = 0; bitpos < 7; ++bitpos) {
      for (std::size_t k = 0; k < group; ++k) {
        words[base + k] |= static_cast<std::uint8_t>(br.get() << (6 - bitpos));
      }
    }
  }
  Decoded result;
  result.data.reserve(original_size);
  for (std::size_t i = 0; i < original_size; ++i) {
    const std::uint8_t hi = hamming_decode_word(words[i * 2], result.corrections);
    const std::uint8_t lo =
        hamming_decode_word(words[i * 2 + 1], result.corrections);
    result.data.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return result;
}

Buffer RepetitionCode::encode(BytesView data) const {
  BitWriter bw;
  for (std::uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      const int v = (byte >> bit) & 1;
      for (int i = 0; i < n_; ++i) bw.push(v);
    }
  }
  return bw.out;
}

Buffer RepetitionCode::decode(BytesView coded,
                              std::size_t original_size) const {
  BitReader br{coded};
  Buffer out;
  out.reserve(original_size);
  for (std::size_t i = 0; i < original_size; ++i) {
    std::uint8_t byte = 0;
    for (int bit = 0; bit < 8; ++bit) {
      int ones = 0;
      for (int k = 0; k < n_; ++k) ones += br.get();
      byte = static_cast<std::uint8_t>((byte << 1) | (ones * 2 > n_ ? 1 : 0));
    }
    out.push_back(byte);
  }
  return out;
}

void inject_bit_errors(Buffer& data, double ber, Rng& rng) {
  for (auto& byte : data) {
    for (int bit = 0; bit < 8; ++bit) {
      if (rng.chance(ber)) byte ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

void inject_burst(Buffer& data, std::size_t len, Rng& rng) {
  const std::size_t total_bits = data.size() * 8;
  if (total_bits == 0 || len == 0) return;
  const std::size_t start =
      rng.below(static_cast<std::uint32_t>(total_bits));
  for (std::size_t i = 0; i < len && start + i < total_bits; ++i) {
    const std::size_t pos = start + i;
    data[pos / 8] ^= static_cast<std::uint8_t>(1 << (7 - pos % 8));
  }
}

std::size_t bit_errors(BytesView a, BytesView b) {
  std::size_t diff = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    diff += static_cast<std::size_t>(__builtin_popcount(a[i] ^ b[i]));
  }
  diff += (std::max(a.size(), b.size()) - n) * 8;
  return diff;
}

}  // namespace iiot::dependability
