// Fault injection for the simulated mesh: crash/reboot processes with
// exponential inter-failure times, driving the reliability experiments
// (E8) and the repair paths of the routing layer.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "dependability/redundancy.hpp"
#include "sim/scheduler.hpp"

namespace iiot::dependability {

struct FaultConfig {
  double mttf_seconds = 600.0;   // mean time to (crash) failure
  double mttr_seconds = 60.0;    // mean repair (reboot) time
  bool repair = true;            // false: crashes are permanent
};

/// Drives one component through crash/repair cycles. The component is
/// abstract: `on_fail` / `on_repair` do the actual stopping/starting
/// (e.g. mac.stop() + routing.stop()).
class CrashProcess {
 public:
  CrashProcess(sim::Scheduler& sched, Rng rng, FaultConfig cfg,
               std::function<void()> on_fail, std::function<void()> on_repair)
      : sched_(sched),
        rng_(rng),
        cfg_(cfg),
        on_fail_(std::move(on_fail)),
        on_repair_(std::move(on_repair)) {}

  /// Starts (or restarts) the process. Restart-safe: any armed timer is
  /// cancelled first, so calling start() twice never leaves two failure
  /// clocks running. A process restarted while its component is down
  /// resumes from the repair side of the cycle (unless crashes are
  /// permanent, in which case the component stays down).
  void start() {
    timer_.cancel();
    running_ = true;
    if (up_) {
      stats_.start(sched_.now());
      arm_failure();
    } else if (cfg_.repair) {
      arm_repair();
    }
  }

  /// Freezes the process in its current state: a component mid-repair
  /// stays down until start() is called again.
  void stop() {
    running_ = false;
    timer_.cancel();
  }

  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] ReliabilityStats& stats() { return stats_; }

 private:
  void arm_failure() {
    const auto dt = sim::seconds(rng_.exponential(cfg_.mttf_seconds));
    timer_ = sched_.schedule_after(dt, [this] {
      if (!running_) return;
      up_ = false;
      stats_.record_failure(sched_.now());
      if (on_fail_) on_fail_();
      if (cfg_.repair) arm_repair();
    });
  }

  void arm_repair() {
    const auto dt = sim::seconds(rng_.exponential(cfg_.mttr_seconds));
    timer_ = sched_.schedule_after(dt, [this] {
      if (!running_) return;
      up_ = true;
      stats_.record_repair(sched_.now());
      if (on_repair_) on_repair_();
      arm_failure();
    });
  }

  sim::Scheduler& sched_;
  Rng rng_;
  FaultConfig cfg_;
  std::function<void()> on_fail_;
  std::function<void()> on_repair_;
  bool running_ = false;
  bool up_ = true;
  ReliabilityStats stats_;
  sim::EventHandle timer_;
};

}  // namespace iiot::dependability
