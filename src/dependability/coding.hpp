// Information redundancy: forward error correction for lossy links
// (paper §V-A, redundancy taxonomy of [42]).
//
//   * Hamming(7,4) — corrects one bit error per 7-bit codeword; with
//     block interleaving it also survives short bursts.
//   * Repetition-n — each bit sent n times, majority-decoded; simple and
//     robust but with 1/n rate, illustrating the resource cost that
//     constrains information redundancy on micro-devices.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace iiot::dependability {

/// Hamming(7,4) with optional interleaving depth (codewords are bit-
/// interleaved in groups of `depth`, spreading a burst across words).
class HammingCode {
 public:
  explicit HammingCode(int interleave_depth = 1)
      : depth_(interleave_depth < 1 ? 1 : interleave_depth) {}

  /// Encodes data; output is ceil(size*2 * 7 / 8) + framing bytes.
  [[nodiscard]] Buffer encode(BytesView data) const;

  /// Decodes, correcting up to one bit error per codeword. Returns the
  /// corrected data and the number of corrections applied.
  struct Decoded {
    Buffer data;
    int corrections = 0;
  };
  [[nodiscard]] Decoded decode(BytesView coded, std::size_t original_size) const;

  [[nodiscard]] double rate() const { return 4.0 / 7.0; }

 private:
  int depth_;
};

/// Bit-level repetition code with majority vote.
class RepetitionCode {
 public:
  explicit RepetitionCode(int n = 3) : n_(n | 1) {}  // force odd

  [[nodiscard]] Buffer encode(BytesView data) const;
  [[nodiscard]] Buffer decode(BytesView coded, std::size_t original_size) const;
  [[nodiscard]] double rate() const { return 1.0 / n_; }
  [[nodiscard]] int n() const { return n_; }

 private:
  int n_;
};

/// Flips each bit independently with probability `ber`.
void inject_bit_errors(Buffer& data, double ber, Rng& rng);

/// Flips a contiguous burst of `len` bits starting at a random offset.
void inject_burst(Buffer& data, std::size_t len, Rng& rng);

/// Bit-level difference between equal-length buffers.
[[nodiscard]] std::size_t bit_errors(BytesView a, BytesView b);

}  // namespace iiot::dependability
