// Time and physical redundancy primitives (paper §V-A, [42]).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace iiot::dependability {

/// Time redundancy: ARQ over an abstract trial. `attempt` returns true on
/// success; retry up to `max_attempts` with the given spacing. Captures
/// the paper's caveat that time redundancy conflicts with soft-realtime
/// deadlines: total latency grows linearly with attempts.
struct ArqPolicy {
  int max_attempts = 4;
  sim::Duration retry_spacing = 50'000;

  struct Outcome {
    bool success = false;
    int attempts = 0;
    sim::Duration latency = 0;  // time until success (or until giving up)
  };

  /// Synchronous model: evaluates attempts against a per-trial success
  /// probability (used by analytical benches; the MAC layer implements
  /// the event-driven version for the mesh).
  [[nodiscard]] Outcome run(double per_trial_success, Rng& rng,
                            sim::Duration per_attempt_latency) const {
    Outcome o;
    for (int i = 1; i <= max_attempts; ++i) {
      o.attempts = i;
      o.latency += per_attempt_latency;
      if (rng.chance(per_trial_success)) {
        o.success = true;
        return o;
      }
      if (i < max_attempts) o.latency += retry_spacing;
    }
    return o;
  }
};

/// Physical redundancy: k-of-n voting over replicated readings. The vote
/// tolerates up to n-k missing and any minority of faulty values.
template <typename T>
class KOfNVoter {
 public:
  KOfNVoter(int k, int n) : k_(k), n_(n) {}

  /// Exact-match majority vote. Returns nullopt when no value reaches k.
  [[nodiscard]] std::optional<T> vote(const std::vector<T>& values) const {
    std::map<T, int> tally;
    for (const T& v : values) ++tally[v];
    const T* best = nullptr;
    int best_count = 0;
    for (const auto& [v, c] : tally) {
      if (c > best_count) {
        best = &v;
        best_count = c;
      }
    }
    if (best != nullptr && best_count >= k_) return *best;
    return std::nullopt;
  }

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int n() const { return n_; }

 private:
  int k_;
  int n_;
};

/// Median-based vote for noisy analog readings: tolerates a minority of
/// arbitrarily wrong sensors without requiring exact agreement.
[[nodiscard]] inline std::optional<double> median_vote(
    std::vector<double> values, std::size_t min_quorum) {
  if (values.size() < min_quorum || values.empty()) return std::nullopt;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2),
                   values.end());
  return values[values.size() / 2];
}

/// Reliability bookkeeping: failure/repair episodes -> MTTF, MTTR,
/// steady-state availability.
class ReliabilityStats {
 public:
  void record_failure(sim::Time at) {
    if (down_) return;
    down_ = true;
    last_failure_ = at;
    if (has_up_since_) uptime_ += at - up_since_;
    ++failures_;
  }

  void record_repair(sim::Time at) {
    if (!down_) return;
    down_ = false;
    downtime_ += at - last_failure_;
    up_since_ = at;
    has_up_since_ = true;
    ++repairs_;
  }

  void start(sim::Time at) {
    up_since_ = at;
    has_up_since_ = true;
  }

  void settle(sim::Time now) {
    if (down_) {
      downtime_ += now - last_failure_;
      last_failure_ = now;
    } else if (has_up_since_) {
      uptime_ += now - up_since_;
      up_since_ = now;
    }
  }

  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] double mttf_seconds() const {
    return failures_ == 0 ? 0.0
                          : sim::to_seconds(uptime_) /
                                static_cast<double>(failures_);
  }
  [[nodiscard]] double mttr_seconds() const {
    return repairs_ == 0 ? 0.0
                         : sim::to_seconds(downtime_) /
                               static_cast<double>(repairs_);
  }
  [[nodiscard]] double availability() const {
    const double up = sim::to_seconds(uptime_);
    const double down = sim::to_seconds(downtime_);
    return up + down > 0 ? up / (up + down) : 1.0;
  }

 private:
  bool down_ = false;
  bool has_up_since_ = false;
  sim::Time up_since_ = 0;
  sim::Time last_failure_ = 0;
  sim::Duration uptime_ = 0;
  sim::Duration downtime_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
};

}  // namespace iiot::dependability
