// Deterministic single-threaded discrete-event scheduler.
//
// This is the substrate substituting for real hardware testbeds (DESIGN.md
// §1): every protocol stack in the repository runs as callbacks on this
// scheduler's virtual clock. Determinism rules:
//   * ties in firing time are broken by insertion order (monotone sequence),
//   * no wall-clock or OS entropy is consulted anywhere.
//
// Hot-path design (see DESIGN.md "Performance architecture"):
//   * event closures live in a free-listed slot pool; a handle is a
//     {slot index, sequence} pair, so cancel() is O(1) and allocation-free,
//   * closures use the small-buffer-optimized sim::Callback, so periodic
//     MAC/Trickle timers never touch the allocator in steady state,
//   * ordering is a 4-ary min-heap over plain {time, seq, slot} PODs with
//     lazy deletion; cancelled entries are skipped at pop and compacted
//     away when they outnumber live ones.
//
// Lifetime: an EventHandle must not be used after its Scheduler is
// destroyed (schedulers outlive the protocol objects holding handles
// everywhere in this codebase).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace iiot::obs {
class Context;
}

namespace iiot::sim {

class Scheduler;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Copyable; all copies refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent, O(1), no
  /// allocation. Stale handles (event fired, or slot recycled for a newer
  /// event) are no-ops.
  inline void cancel();

  /// True if the event is still pending (scheduled, not fired, not
  /// cancelled).
  [[nodiscard]] inline bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* sched, std::uint32_t slot, std::uint64_t seq)
      : sched_(sched), slot_(slot), seq_(seq) {}

  Scheduler* sched_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules fn at absolute time `at` (clamped to now()).
  EventHandle schedule_at(Time at, Callback fn);

  /// Schedules fn after the given delay.
  EventHandle schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or the clock passes `deadline`.
  /// Events scheduled exactly at the deadline still run.
  void run_until(Time deadline);

  /// Runs events until the queue drains entirely.
  void run_all();

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  /// Number of live (scheduled, not fired, not cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_; }

  /// Firing time of the earliest live event, or kTimeNever when the queue
  /// is empty. Skims cancelled entries off the heap front as a side
  /// effect (const-correct lazily: mutates only bookkeeping).
  [[nodiscard]] Time next_event_time();

  /// Total events executed since construction (for perf accounting).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Observability context for this world, or nullptr when off. The
  /// scheduler only carries the pointer (every layer already holds its
  /// scheduler, so this is the one plumbing point); obs::Context installs
  /// and removes itself.
  [[nodiscard]] obs::Context* observability() const { return obs_; }
  void set_observability(obs::Context* c) { obs_ = c; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  /// Closure storage for one scheduled event. `seq` identifies the event
  /// currently occupying the slot; handles carrying an older seq are
  /// stale and cannot touch the slot's new tenant.
  struct Slot {
    Callback fn;
    std::uint64_t seq = 0;
    std::uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  /// Heap entries are plain PODs; the fat closure never moves with the
  /// heap. Total order (at, seq) makes tie-break-by-insertion explicit.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  [[nodiscard]] bool stale(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return !s.armed || s.seq != e.seq;
  }

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);

  // O(1) cancellation backing EventHandle::cancel/pending.
  void cancel(std::uint32_t slot, std::uint64_t seq);
  [[nodiscard]] bool is_pending(std::uint32_t slot, std::uint64_t seq) const {
    if (slot >= slots_.size()) return false;
    const Slot& s = slots_[slot];
    return s.armed && s.seq == seq;
  }

  // 4-ary min-heap primitives over heap_.
  void heap_push(HeapEntry e);
  void heap_pop();
  void sift_down(std::size_t i);
  void compact();

  Time now_ = 0;
  obs::Context* obs_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;          // armed events
  std::size_t stale_entries_ = 0; // cancelled entries still in heap_
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::vector<HeapEntry> heap_;
};

inline void EventHandle::cancel() {
  if (sched_ != nullptr) sched_->cancel(slot_, seq_);
}

inline bool EventHandle::pending() const {
  return sched_ != nullptr && sched_->is_pending(slot_, seq_);
}

/// Repeating timer built on the scheduler; survives rescheduling and
/// cancels cleanly on destruction (RAII).
class PeriodicTimer {
 public:
  PeriodicTimer(Scheduler& sched, Duration period, Callback fn)
      : sched_(sched), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) firing every period, first firing after `phase`.
  void start(Duration phase) {
    stop();
    running_ = true;
    arm(phase);
  }
  void start() { start(period_); }

  void stop() {
    running_ = false;
    handle_.cancel();
  }

  [[nodiscard]] bool running() const { return running_; }
  void set_period(Duration period) { period_ = period; }
  [[nodiscard]] Duration period() const { return period_; }

 private:
  void arm(Duration delay) {
    handle_ = sched_.schedule_after(delay, [this] {
      if (!running_) return;
      arm(period_);
      fn_();
    });
  }

  Scheduler& sched_;
  Duration period_;
  Callback fn_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace iiot::sim
