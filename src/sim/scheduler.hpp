// Deterministic single-threaded discrete-event scheduler.
//
// This is the substrate substituting for real hardware testbeds (DESIGN.md
// §1): every protocol stack in the repository runs as callbacks on this
// scheduler's virtual clock. Determinism rules:
//   * ties in firing time are broken by insertion order (monotone sequence),
//   * no wall-clock or OS entropy is consulted anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace iiot::sim {

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto c = cancelled_.lock()) *c = true;
  }

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending() const {
    auto c = cancelled_.lock();
    return c && !*c;
  }

 private:
  friend class Scheduler;
  explicit EventHandle(std::weak_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  std::weak_ptr<bool> cancelled_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules fn at absolute time `at` (clamped to now()).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Schedules fn after the given delay.
  EventHandle schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or the clock passes `deadline`.
  /// Events scheduled exactly at the deadline still run.
  void run_until(Time deadline);

  /// Runs events until the queue drains entirely.
  void run_all();

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  /// Number of pending (non-cancelled at pop time) events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed since construction (for perf accounting).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Repeating timer built on the scheduler; survives rescheduling and
/// cancels cleanly on destruction (RAII).
class PeriodicTimer {
 public:
  PeriodicTimer(Scheduler& sched, Duration period, std::function<void()> fn)
      : sched_(sched), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) firing every period, first firing after `phase`.
  void start(Duration phase) {
    stop();
    running_ = true;
    arm(phase);
  }
  void start() { start(period_); }

  void stop() {
    running_ = false;
    handle_.cancel();
  }

  [[nodiscard]] bool running() const { return running_; }
  void set_period(Duration period) { period_ = period; }
  [[nodiscard]] Duration period() const { return period_; }

 private:
  void arm(Duration delay) {
    handle_ = sched_.schedule_after(delay, [this] {
      if (!running_) return;
      arm(period_);
      fn_();
    });
  }

  Scheduler& sched_;
  Duration period_;
  std::function<void()> fn_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace iiot::sim
