#include "sim/parallel.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

namespace iiot::sim {

ParallelScheduler::ParallelScheduler(Duration window,
                                     std::vector<ParallelIsland> islands,
                                     unsigned lanes)
    : window_(window),
      islands_(std::move(islands)),
      lanes_(std::min<unsigned>(
          std::max(1u, lanes == 0 ? runner::hardware_jobs() : lanes),
          static_cast<unsigned>(std::max<std::size_t>(1, islands_.size())))),
      engine_(lanes_) {
  if (window_ == 0) throw std::invalid_argument("parallel: window must be > 0");
  const std::size_t n = islands_.size();
  done_ = std::make_unique<DoneCounter[]>(n);
  finished_.assign(n, 0);
  // Contiguous blocks: spatially neighboring islands land on the same
  // lane, so most dependency polls hit counters the lane itself owns.
  lane_islands_.resize(lanes_);
  for (std::size_t i = 0; i < n; ++i) {
    lane_islands_[i * lanes_ / std::max<std::size_t>(1, n)].push_back(i);
  }
}

void ParallelScheduler::run_until(Time deadline) {
  if (islands_.empty()) return;
  // Full windows 0..last_full fit entirely inside [0, deadline]; whatever
  // remains of window last_full+1 is the partial tail every island runs
  // in its finish step.
  const std::int64_t last_full =
      static_cast<std::int64_t>((deadline + 1) / window_) - 1;
  const bool partial = (deadline + 1) % window_ != 0;
  std::fill(finished_.begin(), finished_.end(), 0);
  abort_.store(false, std::memory_order_relaxed);
  engine_.run(lanes_, [&](std::size_t lane) {
    lane_run(lane, last_full, deadline, partial);
  });
}

void ParallelScheduler::lane_run(std::size_t lane, std::int64_t last_full,
                                 Time deadline, bool partial) {
  const std::vector<std::size_t>& mine = lane_islands_[lane];
  try {
    for (;;) {
      if (abort_.load(std::memory_order_relaxed)) return;
      bool progressed = false;
      bool all = true;
      for (std::size_t i : mine) {
        progressed |= advance(i, last_full, deadline, partial);
        all &= finished_[i] != 0;
      }
      if (all) return;
      if (!progressed) std::this_thread::yield();
    }
  } catch (...) {
    // Unblock the other lanes (they spin on done counters we will never
    // advance again); the engine rethrows the lowest-lane exception.
    abort_.store(true, std::memory_order_relaxed);
    throw;
  }
}

bool ParallelScheduler::advance(std::size_t i, std::int64_t last_full,
                                Time deadline, bool partial) {
  if (finished_[i] != 0) return false;
  ParallelIsland& is = islands_[i];
  std::int64_t d = done_[i].v.load(std::memory_order_relaxed);
  bool prog = false;

  auto min_dep = [&] {
    std::int64_t m = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j : is.deps) {
      m = std::min(m, done_[j].v.load(std::memory_order_acquire));
    }
    return m;
  };

  std::int64_t dep = min_dep();
  while (d < last_full) {
    const std::int64_t w = d + 1;
    if (dep < w - 1) return prog;  // window w not yet safe
    // Skip-ahead: if neither a local event nor pending input falls inside
    // the next windows, jump the counter without running the scheduler.
    const Time next_work =
        std::min(is.sched->next_event_time(), is.next_input());
    std::int64_t target = last_full;
    if (next_work != kTimeNever) {
      target = std::min(
          target, static_cast<std::int64_t>(next_work / window_) - 1);
    }
    if (dep != std::numeric_limits<std::int64_t>::max()) {
      target = std::min(target, dep + 1);
    }
    if (target > d) {
      d = target;
    } else {
      is.apply(static_cast<Time>(w) * window_);
      is.sched->run_until(static_cast<Time>(w + 1) * window_ - 1);
      d = w;
    }
    done_[i].v.store(d, std::memory_order_release);
    prog = true;
    dep = min_dep();
  }

  // Finish step: the partial tail of the final window, plus clamping the
  // island clock to the exact deadline (mirrors Scheduler::run_until).
  if (d >= last_full && dep >= last_full) {
    if (partial) {
      is.apply(static_cast<Time>(last_full + 1) * window_);
    }
    is.sched->run_until(deadline);
    finished_[i] = 1;
    prog = true;
  }
  return prog;
}

}  // namespace iiot::sim
