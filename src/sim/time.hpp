// Simulated time. One tick = one microsecond, stored in 64 bits, which
// covers ~584k years of simulated time — enough for multi-year lifetime
// experiments.
#pragma once

#include <cstdint>

namespace iiot::sim {

/// Absolute simulated time in microseconds since simulation start.
using Time = std::uint64_t;

/// Relative simulated duration in microseconds.
using Duration = std::uint64_t;

/// Sentinel "no event / never" timestamp (max representable Time).
inline constexpr Time kTimeNever = ~Time{0};

inline constexpr Duration operator""_us(unsigned long long v) { return v; }
inline constexpr Duration operator""_ms(unsigned long long v) { return v * 1000ULL; }
inline constexpr Duration operator""_s(unsigned long long v) { return v * 1000000ULL; }
inline constexpr Duration operator""_min(unsigned long long v) { return v * 60000000ULL; }
inline constexpr Duration operator""_h(unsigned long long v) { return v * 3600000000ULL; }

constexpr Duration micros(std::uint64_t v) { return v; }
constexpr Duration millis(std::uint64_t v) { return v * 1000ULL; }
constexpr Duration seconds(double v) {
  return static_cast<Duration>(v * 1e6);
}
constexpr Duration minutes(double v) { return seconds(v * 60.0); }
constexpr Duration hours(double v) { return seconds(v * 3600.0); }

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e3; }

}  // namespace iiot::sim
