// Small-buffer-optimized callback for the scheduler hot path.
//
// `std::function` heap-allocates for any capture larger than (typically)
// two pointers, which puts an allocation on every scheduled event carrying
// real state — MAC timers, ack timeouts, Trickle rearms. `Callback` stores
// closures up to kInlineSize bytes inline in the event slot itself and
// only falls back to the heap for oversized or throwing-move captures, so
// the periodic-timer steady state never touches the allocator.
//
// Move-only by design: an event slot is the single owner of its closure.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace iiot::sim {

class Callback {
 public:
  /// Inline capture budget. Sized so every closure in src/ (a couple of
  /// pointers, a frame seq, a small config copy) stays allocation-free.
  static constexpr std::size_t kInlineSize = 48;

  Callback() = default;
  Callback(std::nullptr_t) {}  // NOLINT: mirror std::function conversions

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT: implicit by design, like std::function
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_))
          D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the held closure (releasing any heap fallback) and becomes
  /// empty. Used by the scheduler to free resources at cancel time.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*move)(unsigned char* dst, unsigned char* src);  // dst is raw
    void (*destroy)(unsigned char*);
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* as(unsigned char* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](unsigned char* p) { (*as<D>(p))(); },
      [](unsigned char* dst, unsigned char* src) {
        ::new (static_cast<void*>(dst)) D(std::move(*as<D>(src)));
        as<D>(src)->~D();
      },
      [](unsigned char* p) { as<D>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](unsigned char* p) { (**as<D*>(p))(); },
      [](unsigned char* dst, unsigned char* src) {
        ::new (static_cast<void*>(dst)) D*(*as<D*>(src));
      },
      [](unsigned char* p) { delete *as<D*>(p); },
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize] = {};
  const Ops* ops_ = nullptr;
};

}  // namespace iiot::sim
