// Conservative parallel discrete-event execution over spatial islands
// (DESIGN.md §4i).
//
// One simulated world is partitioned into islands, each owning a private
// sim::Scheduler plus an inter-island input queue managed by the caller.
// Virtual time is cut into fixed windows of `window` microseconds; all
// cross-island effects are quantized to window boundaries by the caller
// (see radio::Interchange), which yields a lookahead of one full window:
// an island executing window w can only produce input whose effect time
// lies strictly beyond boundary (w+1)·window.
//
// Protocol (null-message-free conservative / BSP-with-skips):
//   * done[i] = highest window island i has fully executed (-1 initially).
//   * Island i may execute window w once every dependency j (an island
//     that can send it input) has done[j] >= w-1 — at that point every
//     input with effect time <= w·window has been posted.
//   * Window w runs as: apply(w·window) — drain and apply pending input
//     with effect time <= the boundary — then sched->run_until of the
//     window end. Input application happens *between* windows, outside
//     the scheduler, so the event loop itself needs no synchronization.
//   * Idle islands skip ahead without executing: if the earliest local
//     event and earliest pending input both lie beyond window t, done may
//     jump straight to min(t, min_dep+1). The min_dep+1 bound keeps the
//     skip race-free: any input posted concurrently by a dependency at
//     done=d has effect time beyond (d+2)·window and thus lands in a
//     window the skip cannot cover.
//
// Determinism: island membership, window size, and the per-island input
// ordering are fixed by the world definition, never by the lane count.
// `lanes` only chooses how many threads execute the islands; lanes == 1
// runs the identical code path inline and is the bit-exact serial oracle
// the scenario self-checks diff against.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runner/engine.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace iiot::sim {

/// One island as seen by the parallel engine. The callbacks are invoked
/// only from the lane that owns the island, never concurrently.
struct ParallelIsland {
  Scheduler* sched = nullptr;
  /// Applies every pending inter-island input with effect time <= the
  /// boundary, in the canonical input order.
  std::function<void(Time boundary)> apply;
  /// Earliest effect time of not-yet-applied input (kTimeNever if none).
  /// May be called while other lanes post concurrently; a late answer is
  /// safe (see the skip-ahead rule above).
  std::function<Time()> next_input;
  /// Indices of islands that can post input to this one (excluding self).
  std::vector<std::size_t> deps;
};

class ParallelScheduler {
 public:
  /// `lanes` = number of executing threads (0 → hardware_jobs()), clamped
  /// to the island count. The island list and window are canonical: they
  /// define the simulation; lanes only defines who runs it.
  ParallelScheduler(Duration window, std::vector<ParallelIsland> islands,
                    unsigned lanes);

  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  /// Advances every island to exactly `deadline` (their schedulers end
  /// with now() == deadline, all events <= deadline executed, all input
  /// with effect time <= the last window boundary applied). Callable
  /// repeatedly with nondecreasing deadlines, like Scheduler::run_until.
  /// The first exception thrown by an island propagates (lowest lane
  /// wins); the world is unusable afterwards.
  void run_until(Time deadline);

  [[nodiscard]] std::size_t islands() const { return islands_.size(); }
  [[nodiscard]] unsigned lanes() const { return lanes_; }
  [[nodiscard]] Duration window() const { return window_; }

 private:
  /// done counters live one per cache line: every lane polls its
  /// dependencies' counters in a spin loop.
  struct alignas(64) DoneCounter {
    std::atomic<std::int64_t> v{-1};
  };

  void lane_run(std::size_t lane, std::int64_t last_full, Time deadline,
                bool partial);
  bool advance(std::size_t i, std::int64_t last_full, Time deadline,
               bool partial);

  Duration window_;
  std::vector<ParallelIsland> islands_;
  unsigned lanes_;
  std::vector<std::vector<std::size_t>> lane_islands_;
  std::unique_ptr<DoneCounter[]> done_;
  std::vector<char> finished_;  // per run_until call; owning lane only
  std::atomic<bool> abort_{false};
  runner::Engine engine_;
};

}  // namespace iiot::sim
