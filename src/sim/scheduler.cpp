#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace iiot::sim {

namespace {
// Lazy-deletion policy: compacting is O(n), so only bother once the heap
// is non-trivial and cancelled entries outnumber live ones.
constexpr std::size_t kCompactMinHeap = 64;
}  // namespace

std::uint32_t Scheduler::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.armed = false;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventHandle Scheduler::schedule_at(Time at, Callback fn) {
  if (at < now_) at = now_;
  const std::uint32_t slot = alloc_slot();
  const std::uint64_t seq = next_seq_++;
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = seq;
  s.armed = true;
  heap_push(HeapEntry{at, seq, slot});
  ++live_;
  return EventHandle{this, slot, seq};
}

void Scheduler::cancel(std::uint32_t slot, std::uint64_t seq) {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.armed || s.seq != seq) return;  // already fired / recycled
  release_slot(slot);
  --live_;
  ++stale_entries_;
  if (heap_.size() >= kCompactMinHeap && stale_entries_ * 2 > heap_.size()) {
    compact();
  }
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const HeapEntry e = heap_.front();
    heap_pop();
    if (stale(e)) {
      --stale_entries_;
      continue;
    }
    now_ = e.at;
    ++executed_;
    --live_;
    // Move the closure out before releasing the slot so the callback can
    // freely reschedule (possibly into this very slot).
    Callback fn = std::move(slots_[e.slot].fn);
    release_slot(e.slot);
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time deadline) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (stale(top)) {
      --stale_entries_;
      heap_pop();
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

Time Scheduler::next_event_time() {
  while (!heap_.empty()) {
    if (!stale(heap_.front())) return heap_.front().at;
    --stale_entries_;
    heap_pop();
  }
  return kTimeNever;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

// ------------------------------------------------------- 4-ary min-heap

void Scheduler::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Scheduler::heap_pop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) return;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], heap_[i])) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void Scheduler::compact() {
  std::erase_if(heap_, [this](const HeapEntry& e) { return stale(e); });
  stale_entries_ = 0;
  // Floyd heap construction; (at, seq) is a total order, so the result is
  // independent of the pre-compaction layout — determinism is preserved.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

}  // namespace iiot::sim
