#include "sim/scheduler.hpp"

#include <utility>

namespace iiot::sim {

EventHandle Scheduler::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(cancelled)};
  queue_.push(Event{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

}  // namespace iiot::sim
