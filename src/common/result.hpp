// Minimal Result<T> for recoverable errors on protocol boundaries.
//
// Per the C++ Core Guidelines we use exceptions for programming errors
// (precondition violations) but value-returned errors for expected failures
// such as malformed packets arriving off the (simulated) wire.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace iiot {

/// Error payload: machine-readable code plus human-readable context.
struct Error {
  enum class Code {
    kMalformed,     // could not parse input
    kUnsupported,   // feature/version not supported
    kNotFound,      // addressed entity does not exist
    kTimeout,       // operation did not complete in time
    kUnavailable,   // service cannot serve now (e.g. partitioned)
    kSecurity,      // authentication/integrity failure
    kConflict,      // concurrent-update or state conflict
    kCapacity,      // resource limits exceeded
  };

  Code code;
  std::string message;
};

[[nodiscard]] constexpr const char* to_string(Error::Code c) {
  switch (c) {
    case Error::Code::kMalformed: return "malformed";
    case Error::Code::kUnsupported: return "unsupported";
    case Error::Code::kNotFound: return "not-found";
    case Error::Code::kTimeout: return "timeout";
    case Error::Code::kUnavailable: return "unavailable";
    case Error::Code::kSecurity: return "security";
    case Error::Code::kConflict: return "conflict";
    case Error::Code::kCapacity: return "capacity";
  }
  return "unknown";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : err_(std::move(error)), ok_(false) {}  // NOLINT

  static Status success() { return Status(); }

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  [[nodiscard]] const Error& error() const {
    assert(!ok_);
    return err_;
  }

 private:
  Error err_{Error::Code::kMalformed, {}};
  bool ok_ = true;
};

}  // namespace iiot
