// CRC checksums used by link frames and legacy adapter PDUs.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace iiot {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — the 802.15.4 / Modbus
/// class of frame check sequences used by the link layer and adapters.
[[nodiscard]] std::uint16_t crc16_ccitt(BytesView data);

/// CRC-32 (IEEE 802.3, reflected) — used by firmware-image style blobs.
[[nodiscard]] std::uint32_t crc32_ieee(BytesView data);

}  // namespace iiot
