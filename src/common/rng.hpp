// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (shadowing, packet loss,
// fault injection, workload generation) draws from an explicitly seeded
// Rng so that every experiment is reproducible bit-for-bit (DESIGN.md §4.1).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace iiot {

/// SplitMix64: used for seeding and as a cheap general-purpose generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 generator (O'Neill): small state, good statistical quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0x14057b7ef767814fULL) {
    SplitMix64 sm(seed);
    state_ = sm.next();
    inc_ = (stream << 1u) | 1u;
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) (n > 0), unbiased via rejection.
  std::uint32_t below(std::uint32_t n) {
    std::uint32_t threshold = (-n) % n;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  bool chance(double p) { return uniform() < p; }

  /// Exponential with given mean (inter-arrival sampling, MTTF models).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (used for log-normal shadowing).
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = 1e-12;
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    have_spare_ = true;
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Derives an independent generator (per-node, per-module streams).
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL), salt);
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace iiot
