#include "common/crc.hpp"

#include <array>

namespace iiot {

std::uint16_t crc16_ccitt(BytesView data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(BytesView data) {
  static const auto table = make_crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace iiot
