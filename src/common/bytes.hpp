// Byte-buffer utilities: big-endian writer/reader used by every on-wire codec.
//
// All protocol encodings in this project (CoAP, adapter PDUs, security
// envelopes, CRDT deltas) go through these helpers so that measured byte
// overheads are real serialized sizes, not sizeof(struct) guesses.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iiot {

using Buffer = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends big-endian encoded integers and raw bytes to a Buffer.
class BufWriter {
 public:
  explicit BufWriter(Buffer& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(BytesView b) { out_.insert(out_.end(), b.begin(), b.end()); }
  void str(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }
  /// Length-prefixed (u16) string.
  void lp_str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    str(s);
  }
  /// Length-prefixed (u16) byte blob.
  void lp_bytes(BytesView b) {
    u16(static_cast<std::uint16_t>(b.size()));
    bytes(b);
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  Buffer& out_;
};

/// Consumes big-endian encoded integers and raw bytes from a view.
/// All accessors return std::nullopt on underflow; once an underflow has
/// occurred the reader stays in the failed state (ok() == false).
class BufReader {
 public:
  explicit BufReader(BytesView in) : in_(in) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

  std::optional<std::uint8_t> u8() {
    if (!ensure(1)) return std::nullopt;
    return in_[pos_++];
  }
  std::optional<std::uint16_t> u16() {
    if (!ensure(2)) return std::nullopt;
    auto v = static_cast<std::uint16_t>((in_[pos_] << 8) | in_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::optional<std::uint32_t> u32() {
    auto hi = u16();
    auto lo = u16();
    if (!hi || !lo) return std::nullopt;
    return (static_cast<std::uint32_t>(*hi) << 16) | *lo;
  }
  std::optional<std::uint64_t> u64() {
    auto hi = u32();
    auto lo = u32();
    if (!hi || !lo) return std::nullopt;
    return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
  }
  std::optional<double> f64() {
    auto bits = u64();
    if (!bits) return std::nullopt;
    double v = 0;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }
  std::optional<BytesView> bytes(std::size_t n) {
    if (!ensure(n)) return std::nullopt;
    BytesView v = in_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  std::optional<std::string> str(std::size_t n) {
    auto b = bytes(n);
    if (!b) return std::nullopt;
    return std::string(reinterpret_cast<const char*>(b->data()), b->size());
  }
  std::optional<std::string> lp_str() {
    auto n = u16();
    if (!n) return std::nullopt;
    return str(*n);
  }
  std::optional<Buffer> lp_bytes() {
    auto n = u16();
    if (!n) return std::nullopt;
    auto b = bytes(*n);
    if (!b) return std::nullopt;
    return Buffer(b->begin(), b->end());
  }
  /// Remaining bytes as a view (does not consume).
  [[nodiscard]] BytesView rest() const { return in_.subspan(pos_); }
  void skip(std::size_t n) { ensure(n) ? void(pos_ += n) : void(); }

 private:
  bool ensure(std::size_t n) {
    if (pos_ + n > in_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }

  BytesView in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

inline Buffer to_buffer(std::string_view s) {
  return Buffer(s.begin(), s.end());
}

inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace iiot
