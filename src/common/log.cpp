#include "common/log.hpp"

namespace iiot::log {

Level& level() {
  static Level lvl = Level::kNone;
  return lvl;
}

void write(Level lvl, const std::string& msg) {
  const char* tag = "?";
  switch (lvl) {
    case Level::kError: tag = "E"; break;
    case Level::kWarn: tag = "W"; break;
    case Level::kInfo: tag = "I"; break;
    case Level::kDebug: tag = "D"; break;
    case Level::kNone: return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace iiot::log
