#include "common/log.hpp"

#include <atomic>

namespace iiot::log {

namespace {
std::atomic<Level> g_level{Level::kNone};
}

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void write(Level lvl, const std::string& msg) {
  const char* tag = "?";
  switch (lvl) {
    case Level::kError: tag = "E"; break;
    case Level::kWarn: tag = "W"; break;
    case Level::kInfo: tag = "I"; break;
    case Level::kDebug: tag = "D"; break;
    case Level::kNone: return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace iiot::log
