// Core identifier and scalar types shared by every iiot module.
#pragma once

#include <cstdint>
#include <limits>

namespace iiot {

/// Identifier of a device (node) in the sensing-and-actuation layer.
using NodeId = std::uint32_t;

/// Reserved NodeId meaning "every node in radio range".
inline constexpr NodeId kBroadcastNode = std::numeric_limits<NodeId>::max();

/// Reserved NodeId meaning "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max() - 1;

/// Identifier of an administrative domain (tenant) sharing physical space
/// with other domains (paper §IV-C, administrative scalability).
using TenantId = std::uint16_t;

/// Radio channel number (e.g. 11..26 for 2.4 GHz 802.15.4).
using ChannelId = std::uint8_t;

/// Sequence numbers used by several protocol layers.
using SeqNo = std::uint32_t;

}  // namespace iiot
