// Tiny leveled logger. Silent by default so benches stay clean; tests and
// examples can raise the level for debugging. The level lives in a
// process-wide atomic so parallel runner workers can consult it without a
// data race (it is the one piece of intentionally global state in the
// library — everything simulation-scoped hangs off a Scheduler).
#pragma once

#include <cstdio>
#include <string>

namespace iiot::log {

enum class Level { kNone = 0, kError, kWarn, kInfo, kDebug };

[[nodiscard]] Level level();
void set_level(Level lvl);

void write(Level lvl, const std::string& msg);

template <typename... Args>
void logf(Level lvl, const char* fmt, Args... args) {
  if (lvl > level()) return;
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  write(lvl, buf);
}

#define IIOT_LOG_ERROR(...) ::iiot::log::logf(::iiot::log::Level::kError, __VA_ARGS__)
#define IIOT_LOG_WARN(...) ::iiot::log::logf(::iiot::log::Level::kWarn, __VA_ARGS__)
#define IIOT_LOG_INFO(...) ::iiot::log::logf(::iiot::log::Level::kInfo, __VA_ARGS__)
#define IIOT_LOG_DEBUG(...) ::iiot::log::logf(::iiot::log::Level::kDebug, __VA_ARGS__)

}  // namespace iiot::log
