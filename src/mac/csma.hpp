// Always-on CSMA/CA MAC with link-layer acknowledgments.
//
// This is the latency baseline for E1/E2: the radio listens continuously,
// so per-hop latency is dominated by backoff + airtime (~milliseconds) at
// the price of a ~100% radio duty cycle — the energy regime the paper says
// embedded S&A devices cannot afford (§II-B).
#pragma once

#include "mac/mac.hpp"

namespace iiot::mac {

struct CsmaConfig {
  int max_cca_backoffs = 5;     // 802.15.4 macMaxCSMABackoffs-ish
  int max_retries = 4;          // retransmissions after missing ack
  sim::Duration backoff_unit = 320;   // aUnitBackoffPeriod (us)
  int min_be = 3;               // initial backoff exponent
  int max_be = 6;
  sim::Duration ack_timeout = 1200;   // turnaround + ack airtime + slack
};

class CsmaMac : public MacBase {
 public:
  CsmaMac(radio::Radio& radio, sim::Scheduler& sched, Rng rng,
          TenantId tenant, CsmaConfig cfg = {})
      : MacBase(radio, sched, rng, tenant), cfg_(cfg) {}

  using MacBase::send;

  void start() override;
  void stop() override;
  bool send(NodeId dst, Buffer payload, SendCallback cb) override;
  [[nodiscard]] const char* name() const override { return "csma"; }

 private:
  void process_queue();
  void attempt(int backoff_exponent, int cca_tries);
  void transmit_front();
  void on_frame(const radio::Frame& f, double rssi);
  void finish(bool delivered);

  CsmaConfig cfg_;
  bool running_ = false;
  bool busy_ = false;           // a send() is in flight
  std::uint16_t awaiting_seq_ = 0;
  bool awaiting_ack_ = false;
  sim::EventHandle ack_timer_;
  sim::EventHandle backoff_timer_;
};

}  // namespace iiot::mac
