#include "mac/tdma.hpp"

#include <algorithm>
#include <utility>

namespace iiot::mac {

sim::Duration TdmaMac::rx_offset() const {
  if (cfg_.staggered) {
    // Children (depth+1) transmit at slot index (max_depth - depth - 1).
    const int idx = sched_cfg_.max_depth - sched_cfg_.depth - 1;
    return static_cast<sim::Duration>(std::max(idx, 0)) * cfg_.slot;
  }
  return sched_cfg_.phase;
}

sim::Duration TdmaMac::tx_offset() const {
  if (cfg_.staggered) {
    const int idx = sched_cfg_.max_depth - sched_cfg_.depth;
    return static_cast<sim::Duration>(std::max(idx, 0)) * cfg_.slot;
  }
  return sched_cfg_.parent_phase;
}

void TdmaMac::start() {
  running_ = true;
  radio_.set_receive_handler(
      [this](const radio::Frame& f, double rssi) { on_frame(f, rssi); });
  radio_.set_mode(radio::Mode::kSleep);
  // Align to the next epoch boundary (global sync assumed; see header).
  const sim::Time now = sched_.now();
  const sim::Time next_epoch = ((now / cfg_.epoch) + 1) * cfg_.epoch;
  epoch_timer_ =
      sched_.schedule_at(next_epoch, [this] { on_epoch(); });
}

void TdmaMac::stop() {
  running_ = false;
  epoch_timer_.cancel();
  ack_timer_.cancel();
  in_tx_window_ = false;
  awaiting_ack_ = false;
  radio_.set_mode(radio::Mode::kSleep);
}

bool TdmaMac::send(NodeId dst, Buffer payload, SendCallback cb) {
  if (dst != sched_cfg_.parent || dst == kInvalidNode) {
    if (cb) cb(SendStatus{false, 0});
    return false;
  }
  if (!enqueue(dst, std::move(payload), std::move(cb))) return false;
  // If the tx window is currently open and idle, use it right away.
  if (in_tx_window_ && !frame_in_flight_) {
    const sim::Time epoch_start = (sched_.now() / cfg_.epoch) * cfg_.epoch;
    drain(epoch_start + tx_offset() + cfg_.slot);
  }
  return true;
}

void TdmaMac::on_epoch() {
  if (!running_) return;
  const sim::Time epoch_start = sched_.now();
  epoch_timer_ = sched_.schedule_after(cfg_.epoch, [this] { on_epoch(); });

  if (sched_cfg_.has_children) {
    const sim::Time open = epoch_start + rx_offset();
    const sim::Time close = open + cfg_.slot + cfg_.guard;
    sched_.schedule_at(open > cfg_.guard ? open - cfg_.guard : open,
                       [this] { open_rx_window(); });
    sched_.schedule_at(close, [this] {
      if (running_ && !in_tx_window_ && !frame_in_flight_) {
        radio_.set_mode(radio::Mode::kSleep);
      }
    });
  }
  if (sched_cfg_.parent != kInvalidNode) {
    const sim::Time open = epoch_start + tx_offset();
    const sim::Time close = open + cfg_.slot;
    sched_.schedule_at(open, [this, close] { open_tx_window(close); });
  }
}

void TdmaMac::open_rx_window() {
  if (!running_) return;
  radio_.set_mode(radio::Mode::kListen);
}

void TdmaMac::open_tx_window(sim::Time window_end) {
  if (!running_) return;
  in_tx_window_ = true;
  radio_.set_mode(radio::Mode::kListen);  // need to hear acks
  sched_.schedule_at(window_end, [this] {
    in_tx_window_ = false;
    ack_timer_.cancel();
    awaiting_ack_ = false;
    if (running_ && !frame_in_flight_) radio_.set_mode(radio::Mode::kSleep);
  });
  drain(window_end);
}

void TdmaMac::drain(sim::Time window_end) {
  if (!running_ || !in_tx_window_ || frame_in_flight_ || queue_empty()) {
    return;
  }
  // Leave room for the frame + ack before the window closes.
  if (sched_.now() + 8'000 > window_end) return;
  // Short random offset decorrelates siblings sharing the parent's slot.
  const auto jitter =
      100 + static_cast<sim::Duration>(rng_.below(static_cast<std::uint32_t>(
                std::max<sim::Duration>(cfg_.slot / 16, 1))));
  frame_in_flight_ = true;
  sched_.schedule_after(jitter, [this, window_end] {
    if (!running_ || !in_tx_window_ || queue_empty()) {
      frame_in_flight_ = false;
      return;
    }
    if (!radio_.cca_clear() || !radio_.can_transmit()) {
      frame_in_flight_ = false;
      drain(window_end);  // re-jitter
      return;
    }
    Pending& p = queue_front();
    ++p.attempts;
    radio::Frame f = make_data_frame(p);
    const std::uint16_t seq = f.seq;
    radio_.transmit(std::move(f), [this, seq, window_end] {
      awaiting_ack_ = true;
      awaiting_seq_ = seq;
      ack_timer_ = sched_.schedule_after(cfg_.ack_timeout,
                                         [this, window_end] {
        if (!awaiting_ack_) return;
        awaiting_ack_ = false;
        frame_in_flight_ = false;
        if (queue_empty()) return;
        if (queue_front().attempts > cfg_.max_retries) {
          complete_front(false);
        } else {
          ++stats_.retries;
        }
        drain(window_end);
      });
    });
  });
}

void TdmaMac::on_frame(const radio::Frame& f, double rssi) {
  if (!running_) return;
  if (!tenant_match(f)) {
    ++stats_.rx_foreign;
    return;
  }
  if (f.type == radio::FrameType::kAck && f.dst == radio_.id()) {
    if (awaiting_ack_ && f.seq == awaiting_seq_) {
      awaiting_ack_ = false;
      ack_timer_.cancel();
      frame_in_flight_ = false;
      complete_front(true);
      if (in_tx_window_) {
        const sim::Time epoch_start =
            (sched_.now() / cfg_.epoch) * cfg_.epoch;
        drain(epoch_start + tx_offset() + cfg_.slot);
      }
    }
    return;
  }
  if (f.type != radio::FrameType::kData) return;
  if (f.dst != radio_.id()) return;
  radio::Frame ack = make_control_frame(radio::FrameType::kAck, f.src, f.seq);
  ack.trace = f.trace;  // the ack belongs to the data frame's trace
  sched_.schedule_after(kTurnaround, [this, ack = std::move(ack)]() mutable {
    if (running_ && radio_.can_transmit()) {
      radio_.transmit(std::move(ack), nullptr);
    }
  });
  deliver_data(f, rssi);
}

}  // namespace iiot::mac
