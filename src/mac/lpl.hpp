// Low-power-listening MAC with X-MAC-style strobed preambles [26].
//
// Receivers sleep and wake every `wake_interval` for a short channel
// sample. A sender strobes short wake-up frames until the target's sample
// window catches one; the target answers with an early-ack, the sender
// ships the data frame, and both go back to sleep. Per-hop latency is
// therefore ~U(0, wake_interval) — the mechanism behind the paper's
// "a packet may take seconds to be transmitted over few wireless hops"
// (§IV-B), which bench E1 measures.
#pragma once

#include "mac/mac.hpp"

namespace iiot::mac {

struct LplConfig {
  sim::Duration wake_interval = 500'000;  // 500 ms default
  sim::Duration sample_window = 5'000;    // awake per wakeup
  sim::Duration strobe_gap = 900;         // listen-for-early-ack gap
  sim::Duration extend_step = 2'000;      // window extension on activity
  int max_extensions = 12;
  int max_retries = 3;                    // full strobe-train retries
  sim::Duration data_ack_timeout = 2'000;
};

class LplMac : public MacBase {
 public:
  LplMac(radio::Radio& radio, sim::Scheduler& sched, Rng rng, TenantId tenant,
         LplConfig cfg = {})
      : MacBase(radio, sched, rng, tenant), cfg_(cfg) {}

  using MacBase::send;

  void start() override;
  void stop() override;
  bool send(NodeId dst, Buffer payload, SendCallback cb) override;
  [[nodiscard]] const char* name() const override { return "lpl"; }
  [[nodiscard]] const LplConfig& config() const { return cfg_; }

 private:
  // --- duty-cycled receiver side ---
  void wake();
  void sample_check(int extensions);
  void go_to_sleep();

  // --- sender side ---
  void process_queue();
  void start_attempt();
  void strobe_loop();
  void send_data();
  void finish(bool delivered);

  void on_frame(const radio::Frame& f, double rssi);

  LplConfig cfg_;
  bool running_ = false;

  // Receiver state.
  sim::EventHandle wake_timer_;
  sim::EventHandle window_timer_;
  bool awake_ = false;
  bool activity_ = false;       // frame traffic seen this window
  bool expecting_data_ = false; // strobe-acked, waiting for the data frame

  // Sender state. `sending_` = a send is in progress (possibly waiting
  // out a backoff); `tx_active_` = the radio is owned by the sender right
  // now (strobing or exchanging data), so receive windows must pause.
  bool sending_ = false;
  bool tx_active_ = false;
  bool paused_for_rx_ = false;  // own train paused to accept inbound data
  std::uint16_t tx_seq_ = 0;          // seq of in-flight data frame
  sim::Time strobe_deadline_ = 0;
  bool got_early_ack_ = false;
  sim::EventHandle gap_timer_;
  sim::EventHandle ack_timer_;
  sim::EventHandle resume_timer_;

  void resume_train();
};

}  // namespace iiot::mac
