// Receiver-initiated MAC (RI-MAC class, [27]).
//
// Receivers wake on a jittered interval and announce availability with a
// short beacon; a sender turns its radio on and waits for the target's
// beacon, then transmits immediately. Latency is ~U(0, wake_interval) like
// LPL, but the waiting cost is shifted to the *sender's* idle listening —
// a different point in the same energy/latency trade-off space (E1/E2).
#pragma once

#include "mac/mac.hpp"

namespace iiot::mac {

struct RiMacConfig {
  sim::Duration wake_interval = 500'000;
  double wake_jitter = 0.25;             // ± fraction of interval
  sim::Duration dwell = 4'000;           // listen after own beacon
  int max_dwell_extensions = 8;
  sim::Duration contention_window = 2'000;  // sender delay after beacon
  sim::Duration ack_timeout = 3'000;
  int max_retries = 3;                   // beacons to try before giving up
};

class RiMac : public MacBase {
 public:
  RiMac(radio::Radio& radio, sim::Scheduler& sched, Rng rng, TenantId tenant,
        RiMacConfig cfg = {})
      : MacBase(radio, sched, rng, tenant), cfg_(cfg) {}

  using MacBase::send;

  void start() override;
  void stop() override;
  bool send(NodeId dst, Buffer payload, SendCallback cb) override;
  [[nodiscard]] const char* name() const override { return "rimac"; }
  [[nodiscard]] const RiMacConfig& config() const { return cfg_; }

 private:
  void schedule_wake();
  void wake();
  void dwell_check(int extensions);
  void maybe_sleep();

  void process_queue();
  void start_attempt();
  void on_target_beacon();
  void on_frame(const radio::Frame& f, double rssi);
  void finish(bool delivered);

  RiMacConfig cfg_;
  bool running_ = false;

  // Receiver state.
  sim::EventHandle wake_timer_;
  sim::EventHandle dwell_timer_;
  bool awake_ = false;
  bool activity_ = false;

  // Sender state.
  bool sending_ = false;
  bool data_in_flight_ = false;
  int skip_beacons_ = 0;  // collision-resolution: beacons to sit out
  std::uint16_t tx_seq_ = 0;
  sim::Time attempt_deadline_ = 0;
  sim::EventHandle attempt_timer_;
  sim::EventHandle ack_timer_;
  sim::EventHandle contention_timer_;
};

}  // namespace iiot::mac
