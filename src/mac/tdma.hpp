// Tree-scheduled TDMA MAC (Dozer class, [29]) for data collection.
//
// Nodes are organized in a collection tree with known depths. In
// *staggered* mode, the slot schedule is aligned to the tree: nodes at
// depth d transmit exactly one slot after their children, so a sample
// generated anywhere flows to the root within a single epoch — the
// "highly synchronous end-to-end communication involving tight
// coordination of multiple devices" that the paper credits with minimizing
// latency (§IV-B, bench E2). In *unaligned* mode each parent picks an
// independent rendezvous phase, so every hop waits ~epoch/2 on average.
//
// The schedule is installed explicitly (configure()); time synchronization
// is assumed perfect, which idealizes Dozer's beacon-based sync. This MAC
// only supports upward (child→parent) unicast, as in real collection MACs.
#pragma once

#include "mac/mac.hpp"

namespace iiot::mac {

struct TdmaConfig {
  sim::Duration epoch = 2'000'000;  // 2 s
  sim::Duration slot = 50'000;      // 50 ms
  sim::Duration guard = 2'000;      // parent listens this much early/late
  bool staggered = true;
  int max_retries = 2;              // per frame, within one tx window
  sim::Duration ack_timeout = 1'500;
};

/// Per-node schedule position, wired by whoever builds the tree.
struct TdmaSchedule {
  NodeId parent = kInvalidNode;     // kInvalidNode at the root
  int depth = 0;                    // root = 0
  int max_depth = 1;                // depth of the deepest node in the tree
  bool has_children = false;
  // Unaligned mode only: this node's rx phase and its parent's rx phase
  // within the epoch.
  sim::Duration phase = 0;
  sim::Duration parent_phase = 0;
};

class TdmaMac : public MacBase {
 public:
  TdmaMac(radio::Radio& radio, sim::Scheduler& sched, Rng rng,
          TenantId tenant, TdmaConfig cfg = {})
      : MacBase(radio, sched, rng, tenant, /*queue_capacity=*/64),
        cfg_(cfg) {}

  void configure(const TdmaSchedule& schedule) { sched_cfg_ = schedule; }

  using MacBase::send;

  void start() override;
  void stop() override;
  /// Only `dst == parent` is routable; anything else fails immediately.
  bool send(NodeId dst, Buffer payload, SendCallback cb) override;
  [[nodiscard]] const char* name() const override { return "tdma"; }
  [[nodiscard]] const TdmaConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] sim::Duration rx_offset() const;
  [[nodiscard]] sim::Duration tx_offset() const;
  void on_epoch();
  void open_rx_window();
  void open_tx_window(sim::Time window_end);
  void drain(sim::Time window_end);
  void on_frame(const radio::Frame& f, double rssi);

  TdmaConfig cfg_;
  TdmaSchedule sched_cfg_;
  bool running_ = false;
  bool in_tx_window_ = false;
  bool frame_in_flight_ = false;
  std::uint16_t awaiting_seq_ = 0;
  bool awaiting_ack_ = false;
  sim::EventHandle epoch_timer_;
  sim::EventHandle ack_timer_;
};

}  // namespace iiot::mac
