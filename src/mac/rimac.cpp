#include "mac/rimac.hpp"

#include <algorithm>
#include <utility>

namespace iiot::mac {

void RiMac::start() {
  running_ = true;
  radio_.set_receive_handler(
      [this](const radio::Frame& f, double rssi) { on_frame(f, rssi); });
  radio_.set_mode(radio::Mode::kSleep);
  schedule_wake();
}

void RiMac::stop() {
  running_ = false;
  sending_ = false;
  awake_ = false;
  wake_timer_.cancel();
  dwell_timer_.cancel();
  attempt_timer_.cancel();
  ack_timer_.cancel();
  contention_timer_.cancel();
  radio_.set_mode(radio::Mode::kSleep);
}

bool RiMac::send(NodeId dst, Buffer payload, SendCallback cb) {
  if (!enqueue(dst, std::move(payload), std::move(cb))) return false;
  process_queue();
  return true;
}

// ---------------------------------------------------------------- receiver

void RiMac::schedule_wake() {
  const double jitter = rng_.uniform(1.0 - cfg_.wake_jitter,
                                     1.0 + cfg_.wake_jitter);
  const auto delay = static_cast<sim::Duration>(
      static_cast<double>(cfg_.wake_interval) * jitter);
  wake_timer_ = sched_.schedule_after(delay, [this] { wake(); });
}

void RiMac::wake() {
  if (!running_) return;
  schedule_wake();
  if (radio_.transmitting()) return;  // busy; try next cycle
  awake_ = true;
  activity_ = false;
  radio_.set_mode(radio::Mode::kListen);
  radio::Frame beacon =
      make_control_frame(radio::FrameType::kBeacon, kBroadcastNode);
  radio_.transmit(std::move(beacon), [this] {
    dwell_timer_.cancel();
    dwell_timer_ =
        sched_.schedule_after(cfg_.dwell, [this] { dwell_check(0); });
  });
}

void RiMac::dwell_check(int extensions) {
  if (!running_ || !awake_) return;
  const bool busy = !radio_.cca_clear() && !radio_.transmitting();
  if ((activity_ || busy) && extensions < cfg_.max_dwell_extensions) {
    activity_ = false;
    dwell_timer_ = sched_.schedule_after(
        cfg_.dwell, [this, extensions] { dwell_check(extensions + 1); });
    return;
  }
  awake_ = false;
  maybe_sleep();
}

void RiMac::maybe_sleep() {
  if (!sending_ && !awake_ && running_) radio_.set_mode(radio::Mode::kSleep);
}

// ------------------------------------------------------------------ sender

void RiMac::process_queue() {
  if (!running_ || sending_ || queue_empty()) return;
  sending_ = true;
  start_attempt();
}

void RiMac::start_attempt() {
  if (!running_ || queue_empty()) {
    sending_ = false;
    maybe_sleep();
    return;
  }
  Pending& p = queue_front();
  ++p.attempts;
  data_in_flight_ = false;
  skip_beacons_ = 0;
  tx_seq_ = next_seq_++;
  radio_.set_mode(radio::Mode::kListen);
  // Wait up to ~1.5 jittered intervals for the target's beacon; for
  // broadcast, harvest every neighbor's beacon over one full interval.
  const bool broadcast = p.dst == kBroadcastNode;
  const auto wait = static_cast<sim::Duration>(
      static_cast<double>(cfg_.wake_interval) * (broadcast ? 1.4 : 1.6));
  attempt_deadline_ = sched_.now() + wait;
  attempt_timer_.cancel();
  attempt_timer_ = sched_.schedule_after(wait, [this, broadcast] {
    if (!sending_) return;
    if (broadcast) {
      finish(true);
      return;
    }
    if (queue_front().attempts > cfg_.max_retries) {
      finish(false);
    } else {
      ++stats_.retries;
      start_attempt();
    }
  });
}

void RiMac::on_target_beacon() {
  // Small random contention delay, then transmit if the channel is free.
  const auto delay = kTurnaround + static_cast<sim::Duration>(rng_.below(
                         static_cast<std::uint32_t>(cfg_.contention_window)));
  contention_timer_ = sched_.schedule_after(delay, [this] {
    if (!sending_ || data_in_flight_ || queue_empty()) return;
    if (!radio_.can_transmit()) return;  // wait for another beacon
    const Pending& p = queue_front();
    radio::Frame f = make_data_frame(p);
    f.seq = tx_seq_;
    data_in_flight_ = true;
    const bool broadcast = f.broadcast();
    radio_.transmit(std::move(f), [this, broadcast] {
      if (broadcast) {
        data_in_flight_ = false;  // keep answering other beacons
        return;
      }
      ack_timer_ = sched_.schedule_after(cfg_.ack_timeout, [this] {
        // No ack — almost always a collision with another sender camped
        // on the same receiver's beacon (convergecast: everyone contends
        // for the sink). Retrying at the very next beacon keeps the
        // colliders in lockstep forever, so resolve like RI-MAC does:
        // sit out a random number of beacons before contending again.
        data_in_flight_ = false;
        if (!queue_empty()) {
          const auto intensity = static_cast<std::uint32_t>(
              std::min(queue_front().attempts, 3) + 1);
          skip_beacons_ = static_cast<int>(rng_.below(intensity + 1));
        }
      });
    });
  });
}

void RiMac::on_frame(const radio::Frame& f, double rssi) {
  if (!running_) return;
  if (!tenant_match(f)) {
    ++stats_.rx_foreign;
    activity_ = true;
    return;
  }
  activity_ = true;

  switch (f.type) {
    case radio::FrameType::kBeacon:
      if (sending_ && !data_in_flight_ && !queue_empty()) {
        const NodeId dst = queue_front().dst;
        if (dst == f.src || dst == kBroadcastNode) {
          if (skip_beacons_ > 0 && dst != kBroadcastNode) {
            --skip_beacons_;  // collision-resolution backoff
            return;
          }
          on_target_beacon();
        }
      }
      return;

    case radio::FrameType::kAck:
      if (sending_ && f.dst == radio_.id() && f.seq == tx_seq_) {
        ack_timer_.cancel();
        attempt_timer_.cancel();
        finish(true);
      }
      return;

    case radio::FrameType::kData: {
      if (f.dst != radio_.id() && !f.broadcast()) return;
      if (!f.broadcast()) {
        radio::Frame ack =
            make_control_frame(radio::FrameType::kAck, f.src, f.seq);
        ack.trace = f.trace;
        sched_.schedule_after(kTurnaround,
                              [this, ack = std::move(ack)]() mutable {
                                if (running_ && radio_.can_transmit()) {
                                  radio_.transmit(std::move(ack), nullptr);
                                }
                              });
      }
      deliver_data(f, rssi);
      return;
    }

    default:
      return;
  }
}

void RiMac::finish(bool delivered) {
  ack_timer_.cancel();
  attempt_timer_.cancel();
  contention_timer_.cancel();
  data_in_flight_ = false;
  complete_front(delivered);
  if (!queue_empty()) {
    start_attempt();
    return;
  }
  sending_ = false;
  maybe_sleep();
}

}  // namespace iiot::mac
