#include "mac/csma.hpp"

#include <utility>

namespace iiot::mac {

void CsmaMac::start() {
  running_ = true;
  radio_.set_mode(radio::Mode::kListen);
  radio_.set_receive_handler(
      [this](const radio::Frame& f, double rssi) { on_frame(f, rssi); });
  process_queue();
}

void CsmaMac::stop() {
  running_ = false;
  busy_ = false;
  awaiting_ack_ = false;
  ack_timer_.cancel();
  backoff_timer_.cancel();
  radio_.set_mode(radio::Mode::kSleep);
}

bool CsmaMac::send(NodeId dst, Buffer payload, SendCallback cb) {
  if (!enqueue(dst, std::move(payload), std::move(cb))) return false;
  process_queue();
  return true;
}

void CsmaMac::process_queue() {
  if (!running_ || busy_ || queue_empty()) return;
  busy_ = true;
  attempt(cfg_.min_be, 0);
}

void CsmaMac::attempt(int backoff_exponent, int cca_tries) {
  const auto window =
      cfg_.backoff_unit * ((1ULL << backoff_exponent) - 1ULL);
  const sim::Duration delay =
      window > 0 ? static_cast<sim::Duration>(
                       rng_.below(static_cast<std::uint32_t>(window)))
                 : 0;
  backoff_timer_ = sched_.schedule_after(delay, [this, backoff_exponent,
                                                 cca_tries] {
    if (!running_ || queue_empty()) {
      busy_ = false;
      return;
    }
    if (!radio_.cca_clear() || !radio_.can_transmit()) {
      if (cca_tries + 1 >= cfg_.max_cca_backoffs) {
        finish(false);  // channel persistently busy
        return;
      }
      attempt(std::min(backoff_exponent + 1, cfg_.max_be), cca_tries + 1);
      return;
    }
    transmit_front();
  });
}

void CsmaMac::transmit_front() {
  Pending& p = queue_front();
  ++p.attempts;
  radio::Frame f = make_data_frame(p);
  const bool broadcast = f.broadcast();
  const std::uint16_t seq = f.seq;
  radio_.transmit(std::move(f), [this, broadcast, seq] {
    if (!running_) return;
    if (broadcast) {
      finish(true);
      return;
    }
    awaiting_ack_ = true;
    awaiting_seq_ = seq;
    ack_timer_ = sched_.schedule_after(cfg_.ack_timeout, [this] {
      if (!awaiting_ack_) return;
      awaiting_ack_ = false;
      if (queue_empty()) {
        busy_ = false;
        return;
      }
      if (queue_front().attempts > cfg_.max_retries) {
        finish(false);
      } else {
        ++stats_.retries;
        attempt(cfg_.min_be, 0);
      }
    });
  });
}

void CsmaMac::on_frame(const radio::Frame& f, double rssi) {
  if (!running_ || !tenant_match(f)) {
    if (f.tenant != tenant_) ++stats_.rx_foreign;
    return;
  }
  if (f.type == radio::FrameType::kAck && f.dst == radio_.id()) {
    if (awaiting_ack_ && f.seq == awaiting_seq_) {
      awaiting_ack_ = false;
      ack_timer_.cancel();
      finish(true);
    }
    return;
  }
  if (f.type != radio::FrameType::kData) return;
  if (f.dst != radio_.id() && !f.broadcast()) return;

  if (!f.broadcast()) {
    // Ack after turnaround; best-effort (radio may be mid-TX).
    radio::Frame ack =
        make_control_frame(radio::FrameType::kAck, f.src, f.seq);
    ack.trace = f.trace;  // the ack belongs to the data frame's trace
    sched_.schedule_after(kTurnaround, [this, ack = std::move(ack)]() mutable {
      if (running_ && radio_.can_transmit()) {
        radio_.transmit(std::move(ack), nullptr);
      }
    });
  }
  deliver_data(f, rssi);
}

void CsmaMac::finish(bool delivered) {
  complete_front(delivered);
  busy_ = false;
  process_queue();
}

}  // namespace iiot::mac
