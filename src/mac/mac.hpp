// Medium-access-control interface and shared machinery.
//
// The paper's sensing-and-actuation layer peculiarities (§II-B, §IV-B) show
// up at this layer: radios are duty-cycled to save energy, which trades
// per-hop latency for lifetime. Four MACs implement this interface:
//   * CsmaMac  — always-on CSMA/CA with link-layer acks (latency baseline)
//   * LplMac   — low-power listening with X-MAC-style strobes [26]
//   * RiMac    — receiver-initiated beacons [27]
//   * TdmaMac  — staggered parent/child schedules, Dozer-class [29]
// Benches swap them behind this interface (DESIGN.md §4.5).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/context.hpp"
#include "radio/radio.hpp"
#include "sim/scheduler.hpp"

namespace iiot::mac {

/// 802.15.4 aTurnaroundTime: RX/TX switch before acks.
inline constexpr sim::Duration kTurnaround = 192;

struct SendStatus {
  bool delivered = false;  // acked (unicast) or fully strobed (broadcast)
  int attempts = 0;
};

using SendCallback = std::function<void(const SendStatus&)>;
using ReceiveHandler =
    std::function<void(NodeId src, BytesView payload, double rssi_dbm)>;

struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t delivered = 0;   // send() completed with ack
  std::uint64_t failed = 0;      // send() exhausted retries
  std::uint64_t retries = 0;
  std::uint64_t rx_delivered = 0;
  std::uint64_t rx_duplicates = 0;
  std::uint64_t rx_foreign = 0;  // frames from other tenants (ignored)
};

/// Abstract MAC. Implementations own the radio's mode; upper layers must
/// not touch the radio directly once start() has been called.
class Mac {
 public:
  virtual ~Mac() = default;

  virtual void start() = 0;
  virtual void stop() = 0;

  /// Queues `payload` for transmission to `dst` (or kBroadcastNode).
  /// Returns false if the MAC queue is full. `cb` fires exactly once.
  virtual bool send(NodeId dst, Buffer payload, SendCallback cb) = 0;
  bool send(NodeId dst, Buffer payload) {
    return send(dst, std::move(payload), nullptr);
  }

  virtual void set_receive_handler(ReceiveHandler h) = 0;
  [[nodiscard]] virtual const MacStats& stats() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual NodeId id() const = 0;
};

/// Shared plumbing: queueing, sequence numbers, duplicate suppression and
/// tenant filtering. Concrete MACs drive the radio.
class MacBase : public Mac {
 public:
  MacBase(radio::Radio& radio, sim::Scheduler& sched, Rng rng,
          TenantId tenant, std::size_t queue_capacity = 16)
      : radio_(radio),
        sched_(sched),
        rng_(rng),
        tenant_(tenant),
        queue_capacity_(queue_capacity) {
    if (obs::MetricsRegistry* m = obs::metrics(sched_)) {
      const auto node = static_cast<std::int64_t>(radio_.id());
      m->attach_counter("mac", "enqueued", node, &stats_.enqueued, this);
      m->attach_counter("mac", "queue_drops", node, &stats_.queue_drops, this);
      m->attach_counter("mac", "delivered", node, &stats_.delivered, this);
      m->attach_counter("mac", "failed", node, &stats_.failed, this);
      m->attach_counter("mac", "retries", node, &stats_.retries, this);
      m->attach_counter("mac", "rx_delivered", node, &stats_.rx_delivered,
                        this);
      m->attach_counter("mac", "rx_duplicates", node, &stats_.rx_duplicates,
                        this);
      m->attach_counter("mac", "rx_foreign", node, &stats_.rx_foreign, this);
    }
  }

  ~MacBase() override {
    if (obs::MetricsRegistry* m = obs::metrics(sched_)) m->detach(this);
  }

  using Mac::send;  // re-expose the 2-arg convenience overload

  void set_receive_handler(ReceiveHandler h) override {
    on_receive_ = std::move(h);
  }
  [[nodiscard]] const MacStats& stats() const override { return stats_; }
  [[nodiscard]] NodeId id() const override { return radio_.id(); }
  [[nodiscard]] TenantId tenant() const { return tenant_; }
  [[nodiscard]] radio::Radio& radio() { return radio_; }

 protected:
  struct Pending {
    NodeId dst;
    Buffer payload;
    SendCallback cb;
    int attempts = 0;
    obs::TraceId trace = 0;       // captured from ambient trace at enqueue
    obs::SpanRef parent_span = 0; // caller's span (e.g. net.hop)
    obs::SpanRef span = 0;        // this request's mac "tx" span
  };

  /// Enqueues a request; returns false when the queue is at capacity.
  /// Captures the ambient trace so the queued transmission — including
  /// retries, strobes and beacon waits — is attributed to the message that
  /// caused it.
  bool enqueue(NodeId dst, Buffer payload, SendCallback cb) {
    if (queue_.size() >= queue_capacity_) {
      ++stats_.queue_drops;
      if (obs::Tracer* t = obs::tracer(sched_)) {
        t->instant(t->current_trace(), id(), obs::Layer::kMac, "queue_drop",
                   t->current_span());
      }
      if (cb) cb(SendStatus{false, 0});
      return false;
    }
    ++stats_.enqueued;
    Pending p{dst, std::move(payload), std::move(cb), 0};
    if (obs::Tracer* t = obs::tracer(sched_)) {
      p.trace = t->current_trace();
      p.parent_span = t->current_span();
      p.span = t->begin(p.trace, id(), obs::Layer::kMac, "tx", p.parent_span);
    }
    queue_.push_back(std::move(p));
    return true;
  }

  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  [[nodiscard]] Pending& queue_front() { return queue_.front(); }
  void queue_pop() { queue_.pop_front(); }

  /// Completes the front request and pops it.
  void complete_front(bool delivered) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (delivered) {
      ++stats_.delivered;
    } else {
      ++stats_.failed;
    }
    obs::Tracer* t = obs::tracer(sched_);
    if (t != nullptr) {
      t->annotate(p.span, "attempts",
                  static_cast<std::uint64_t>(p.attempts));
      t->end(p.span);
    }
    // The callback runs in this request's trace: a routing layer that
    // reroutes on failure re-enqueues under the same trace automatically.
    obs::TraceScope scope(t, p.trace, p.parent_span);
    if (p.cb) p.cb(SendStatus{delivered, p.attempts});
  }

  /// Builds a data frame for the front request with a fresh sequence no.
  radio::Frame make_data_frame(const Pending& p) {
    radio::Frame f;
    f.src = radio_.id();
    f.dst = p.dst;
    f.tenant = tenant_;
    f.type = radio::FrameType::kData;
    f.seq = next_seq_++;
    f.payload = p.payload;
    f.trace = p.trace;
    f.span = p.span;
    return f;
  }

  radio::Frame make_control_frame(radio::FrameType type, NodeId dst,
                                  std::uint16_t seq = 0) {
    radio::Frame f;
    f.src = radio_.id();
    f.dst = dst;
    f.tenant = tenant_;
    f.type = type;
    f.seq = seq;
    return f;
  }

  /// Tenant filter + duplicate suppression; delivers to the upper layer.
  /// Returns true if the frame was fresh (delivered).
  bool deliver_data(const radio::Frame& f, double rssi) {
    if (f.tenant != tenant_) {
      ++stats_.rx_foreign;
      return false;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f.src) << 16) | f.seq;
    auto [it, fresh] = seen_.emplace(f.src, key);
    if (!fresh) {
      if (it->second == key) {
        ++stats_.rx_duplicates;
        return false;
      }
      it->second = key;
    }
    ++stats_.rx_delivered;
    obs::Tracer* t = obs::tracer(sched_);
    if (t != nullptr) {
      t->instant(f.trace, radio_.id(), obs::Layer::kMac, "rx");
    }
    // Upcall runs in the frame's trace so the next layer (routing,
    // transport) continues the causal chain.
    obs::TraceScope scope(t, f.trace, 0);
    if (on_receive_) on_receive_(f.src, f.payload, rssi);
    return true;
  }

  [[nodiscard]] bool tenant_match(const radio::Frame& f) const {
    return f.tenant == tenant_;
  }

  radio::Radio& radio_;
  sim::Scheduler& sched_;
  Rng rng_;
  TenantId tenant_;
  MacStats stats_;
  std::uint16_t next_seq_ = 1;

 private:
  std::size_t queue_capacity_;
  std::deque<Pending> queue_;
  ReceiveHandler on_receive_;
  // Last sequence key seen per source (suppresses immediate duplicates,
  // which is what link-layer dedup realistically achieves).
  std::unordered_map<NodeId, std::uint64_t> seen_;
};

}  // namespace iiot::mac
