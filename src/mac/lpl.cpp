#include "mac/lpl.hpp"

#include <utility>

namespace iiot::mac {

void LplMac::start() {
  running_ = true;
  radio_.set_receive_handler(
      [this](const radio::Frame& f, double rssi) { on_frame(f, rssi); });
  radio_.set_mode(radio::Mode::kSleep);
  // Desynchronize wakeups across nodes.
  const auto phase = static_cast<sim::Duration>(
      rng_.below(static_cast<std::uint32_t>(cfg_.wake_interval)));
  wake_timer_ = sched_.schedule_after(phase, [this] { wake(); });
}

void LplMac::stop() {
  running_ = false;
  sending_ = false;
  tx_active_ = false;
  paused_for_rx_ = false;
  awake_ = false;
  resume_timer_.cancel();
  wake_timer_.cancel();
  window_timer_.cancel();
  gap_timer_.cancel();
  ack_timer_.cancel();
  radio_.set_mode(radio::Mode::kSleep);
}

bool LplMac::send(NodeId dst, Buffer payload, SendCallback cb) {
  if (!enqueue(dst, std::move(payload), std::move(cb))) return false;
  process_queue();
  return true;
}

// ---------------------------------------------------------------- receiver

void LplMac::wake() {
  if (!running_) return;
  wake_timer_ =
      sched_.schedule_after(cfg_.wake_interval, [this] { wake(); });
  if (tx_active_) return;  // radio owned by an active strobe/data burst
  awake_ = true;
  activity_ = false;
  expecting_data_ = false;
  radio_.set_mode(radio::Mode::kListen);
  window_timer_.cancel();
  window_timer_ = sched_.schedule_after(cfg_.sample_window,
                                        [this] { sample_check(0); });
}

void LplMac::sample_check(int extensions) {
  if (!running_ || !awake_ || tx_active_) return;
  const bool busy = !radio_.cca_clear();
  if ((activity_ || busy || expecting_data_) &&
      extensions < cfg_.max_extensions) {
    activity_ = false;
    window_timer_ = sched_.schedule_after(
        cfg_.extend_step, [this, extensions] { sample_check(extensions + 1); });
    return;
  }
  go_to_sleep();
}

void LplMac::go_to_sleep() {
  awake_ = false;
  expecting_data_ = false;
  window_timer_.cancel();
  if (!tx_active_) radio_.set_mode(radio::Mode::kSleep);
}

// ------------------------------------------------------------------ sender

void LplMac::process_queue() {
  if (!running_ || sending_ || queue_empty()) return;
  sending_ = true;
  start_attempt();
}

void LplMac::start_attempt() {
  if (!running_ || queue_empty()) {
    sending_ = false;
    return;
  }
  Pending& p = queue_front();
  ++p.attempts;
  tx_active_ = true;
  awake_ = false;
  window_timer_.cancel();
  radio_.set_mode(radio::Mode::kListen);
  got_early_ack_ = false;
  tx_seq_ = next_seq_++;
  strobe_deadline_ = sched_.now() + cfg_.wake_interval + 15'000;
  strobe_loop();
}

void LplMac::strobe_loop() {
  if (!running_ || !sending_) return;
  if (got_early_ack_) return;  // handled in on_frame
  if (sched_.now() >= strobe_deadline_) {
    if (queue_front().dst == kBroadcastNode) {
      // A full wake interval of repeated copies reaches every neighbor.
      finish(true);
      return;
    }
    // Target never answered during a full wake interval.
    if (queue_front().attempts > cfg_.max_retries) {
      finish(false);
    } else {
      // Random inter-attempt backoff: two senders whose trains keep
      // colliding (or whose target is busy sending) must desynchronize.
      // The radio returns to normal duty cycling meanwhile, so this
      // node keeps serving its own children as a receiver.
      ++stats_.retries;
      tx_active_ = false;
      radio_.set_mode(radio::Mode::kSleep);
      gap_timer_ = sched_.schedule_after(
          static_cast<sim::Duration>(
              rng_.below(static_cast<std::uint32_t>(cfg_.wake_interval / 2))),
          [this] { start_attempt(); });
    }
    return;
  }
  // Carrier sense before strobing (X-MAC): barging into an ongoing
  // train only corrupts both at the receiver. Deadline extends by the
  // defer time so busy air does not consume the attempt budget.
  if (!radio_.cca_clear() && !radio_.transmitting()) {
    const auto defer =
        1'000 + static_cast<sim::Duration>(rng_.below(4'000));
    strobe_deadline_ += defer;
    gap_timer_ = sched_.schedule_after(defer, [this] { strobe_loop(); });
    return;
  }
  const Pending& p = queue_front();
  if (p.dst == kBroadcastNode) {
    // Broadcast LPL: repeat the data frame itself for a full wake interval
    // so that every neighbor's sample window overlaps at least one copy.
    radio::Frame f = make_data_frame(p);
    f.seq = tx_seq_;  // constant seq: receivers dedup extra copies
    if (!radio_.transmit(std::move(f), [this] {
          gap_timer_ = sched_.schedule_after(300, [this] { strobe_loop(); });
        })) {
      gap_timer_ = sched_.schedule_after(500, [this] { strobe_loop(); });
    }
    return;
  }
  radio::Frame strobe =
      make_control_frame(radio::FrameType::kStrobe, p.dst, tx_seq_);
  // Strobes are part of the pending request's MAC transmission: their
  // airtime nests under its "tx" span.
  strobe.trace = p.trace;
  strobe.span = p.span;
  if (!radio_.transmit(std::move(strobe), [this] {
        // Listen for the early-ack during the inter-strobe gap.
        gap_timer_ = sched_.schedule_after(cfg_.strobe_gap,
                                           [this] { strobe_loop(); });
      })) {
    gap_timer_ = sched_.schedule_after(500, [this] { strobe_loop(); });
  }
}

void LplMac::send_data() {
  if (!running_ || !sending_ || queue_empty()) return;
  const Pending& p = queue_front();
  radio::Frame f = make_data_frame(p);
  f.seq = tx_seq_;
  const bool started = radio_.transmit(std::move(f), [this] {
    ack_timer_ = sched_.schedule_after(cfg_.data_ack_timeout, [this] {
      if (!sending_) return;
      if (queue_front().attempts > cfg_.max_retries) {
        finish(false);
      } else {
        ++stats_.retries;
        tx_active_ = false;
        radio_.set_mode(radio::Mode::kSleep);
        gap_timer_ = sched_.schedule_after(
            static_cast<sim::Duration>(rng_.below(
                static_cast<std::uint32_t>(cfg_.wake_interval / 2))),
            [this] { start_attempt(); });
      }
    });
  });
  if (!started) {
    // Radio busy (e.g. mid-reception of a third node's frame). Without a
    // retry the MAC would wedge: sending_/tx_active_ stay set with no
    // timer pending — mute *and* deaf forever. The receiver's extended
    // window (expecting_data_) keeps it listening long enough.
    gap_timer_ = sched_.schedule_after(500, [this] { send_data(); });
  }
}

void LplMac::resume_train() {
  if (!paused_for_rx_) return;
  paused_for_rx_ = false;
  expecting_data_ = false;
  if (running_ && tx_active_ && !got_early_ack_) strobe_loop();
}

void LplMac::finish(bool delivered) {
  gap_timer_.cancel();
  ack_timer_.cancel();
  resume_timer_.cancel();
  paused_for_rx_ = false;
  complete_front(delivered);
  if (!queue_empty()) {
    start_attempt();
    return;
  }
  sending_ = false;
  tx_active_ = false;
  radio_.set_mode(radio::Mode::kSleep);
}

// -------------------------------------------------------------- rx dispatch

void LplMac::on_frame(const radio::Frame& f, double rssi) {
  if (!running_) return;
  if (!tenant_match(f)) {
    ++stats_.rx_foreign;
    activity_ = true;  // foreign traffic still keeps the window open
    return;
  }
  activity_ = true;

  switch (f.type) {
    case radio::FrameType::kStrobeAck:
      if (tx_active_ && f.dst == radio_.id() && f.seq == tx_seq_ &&
          !got_early_ack_) {
        got_early_ack_ = true;
        gap_timer_.cancel();
        sched_.schedule_after(kTurnaround, [this] { send_data(); });
      }
      return;

    case radio::FrameType::kStrobe:
      if (tx_active_) {
        // A child is strobing *us* while we strobe our parent. Pause our
        // train, accept its frame, then resume — otherwise parent and
        // child deadlock, each deaf to the other for a full interval.
        if (f.dst == radio_.id() && !paused_for_rx_) {
          paused_for_rx_ = true;
          expecting_data_ = true;
          gap_timer_.cancel();
          strobe_deadline_ += 40'000;
          radio::Frame pack = make_control_frame(
              radio::FrameType::kStrobeAck, f.src, f.seq);
          pack.trace = f.trace;
          sched_.schedule_after(kTurnaround,
                                [this, pack = std::move(pack)]() mutable {
                                  if (running_ && radio_.can_transmit()) {
                                    radio_.transmit(std::move(pack), nullptr);
                                  }
                                });
          resume_timer_ = sched_.schedule_after(
              40'000, [this] { resume_train(); });
        }
        return;
      }
      if (f.dst == radio_.id()) {
        expecting_data_ = true;
        radio::Frame ack = make_control_frame(radio::FrameType::kStrobeAck,
                                              f.src, f.seq);
        ack.trace = f.trace;
        sched_.schedule_after(kTurnaround,
                              [this, ack = std::move(ack)]() mutable {
                                if (running_ && radio_.can_transmit()) {
                                  radio_.transmit(std::move(ack), nullptr);
                                }
                              });
      } else {
        // Overhearing avoidance: the strobe train is for someone else.
        go_to_sleep();
      }
      return;

    case radio::FrameType::kAck:
      if (sending_ && f.dst == radio_.id() && f.seq == tx_seq_) {
        ack_timer_.cancel();
        finish(true);
      }
      return;

    case radio::FrameType::kData: {
      if (f.dst != radio_.id() && !f.broadcast()) return;
      if (!f.broadcast()) {
        radio::Frame ack =
            make_control_frame(radio::FrameType::kAck, f.src, f.seq);
        ack.trace = f.trace;
        sched_.schedule_after(kTurnaround,
                              [this, ack = std::move(ack)]() mutable {
                                if (running_ && radio_.can_transmit()) {
                                  radio_.transmit(std::move(ack), nullptr);
                                }
                              });
      }
      expecting_data_ = false;
      deliver_data(f, rssi);
      if (paused_for_rx_) {
        // Inbound exchange done; resume our own train shortly (after
        // our link-layer ack has left the antenna).
        resume_timer_.cancel();
        resume_timer_ =
            sched_.schedule_after(3'000, [this] { resume_train(); });
      }
      return;
    }

    default:
      return;
  }
}

}  // namespace iiot::mac
