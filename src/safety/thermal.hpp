// First-order thermal plant model for building zones.
//
// The paper's safety discussion (§V-B) uses HVAC in office buildings as
// the running example of *continuous* safety: comfort bands instead of
// binary safe/unsafe, deliberate margin violations to save energy, and
// revenue coupled to both. This plant model is the physical substrate.
//
//   C dT/dt = (T_out - T)/R + P_hvac + P_internal
//
// with thermal capacitance C [J/K], envelope resistance R [K/W], HVAC
// power P_hvac [W] (positive heats, negative cools) and internal gains
// from occupants and equipment.
#pragma once

namespace iiot::safety {

struct ZoneParams {
  double capacitance_j_per_k = 4.0e6;   // ~medium office zone
  double resistance_k_per_w = 0.004;    // envelope insulation
  double max_heat_w = 12'000.0;         // sized for design-day ΔT ≈ 40 K
  double max_cool_w = 8'000.0;          // magnitude of cooling power
  double gain_per_occupant_w = 120.0;   // metabolic + equipment
};

class ZoneThermalModel {
 public:
  explicit ZoneThermalModel(ZoneParams params, double initial_temp_c = 20.0)
      : params_(params), temp_c_(initial_temp_c) {}

  /// Advances the zone by dt seconds. `hvac_w` is clamped to the
  /// equipment limits; returns the (clamped) power actually applied.
  double step(double dt_s, double outdoor_c, int occupants, double hvac_w) {
    if (hvac_w > params_.max_heat_w) hvac_w = params_.max_heat_w;
    if (hvac_w < -params_.max_cool_w) hvac_w = -params_.max_cool_w;
    const double internal_w =
        static_cast<double>(occupants) * params_.gain_per_occupant_w;
    const double envelope_w = (outdoor_c - temp_c_) / params_.resistance_k_per_w;
    const double dT =
        (envelope_w + hvac_w + internal_w) / params_.capacitance_j_per_k;
    temp_c_ += dT * dt_s;
    return hvac_w;
  }

  [[nodiscard]] double temperature_c() const { return temp_c_; }
  void set_temperature_c(double t) { temp_c_ = t; }
  [[nodiscard]] const ZoneParams& params() const { return params_; }

 private:
  ZoneParams params_;
  double temp_c_;
};

}  // namespace iiot::safety
