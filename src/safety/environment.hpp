// Weather and occupancy drivers for the HVAC safety experiments.
#pragma once

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace iiot::safety {

/// Synthetic outdoor temperature: diurnal cycle plus a *sub-diurnal*
/// component (the paper notes industrial devices face "both low and high
/// temperatures, sometimes in sub-diurnal cycles", §II-B) plus seeded
/// weather noise.
class WeatherModel {
 public:
  struct Params {
    double mean_c = 12.0;
    double diurnal_amplitude_c = 8.0;
    double subdiurnal_amplitude_c = 3.0;
    double subdiurnal_period_h = 4.0;
    double noise_sigma_c = 0.6;
  };

  WeatherModel(Params params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Outdoor temperature at `t_s` seconds since midnight of day 0.
  double outdoor_c(double t_s) {
    const double h = t_s / 3600.0;
    const double diurnal =
        params_.diurnal_amplitude_c *
        std::sin(2.0 * std::numbers::pi * (h - 9.0) / 24.0);
    const double subdiurnal =
        params_.subdiurnal_amplitude_c *
        std::sin(2.0 * std::numbers::pi * h / params_.subdiurnal_period_h);
    return params_.mean_c + diurnal + subdiurnal +
           rng_.normal(0.0, params_.noise_sigma_c);
  }

 private:
  Params params_;
  Rng rng_;
};

/// Office occupancy: weekdays 8:00-18:00, zone-dependent headcount, with
/// a lunch dip. Deterministic given (zone, time).
class OccupancySchedule {
 public:
  explicit OccupancySchedule(int max_occupants = 8)
      : max_occupants_(max_occupants) {}

  [[nodiscard]] int occupants(int zone, double t_s) const {
    const double h_of_day = std::fmod(t_s / 3600.0, 24.0);
    const int day = static_cast<int>(t_s / 86400.0);
    const bool weekday = (day % 7) < 5;
    if (!weekday || h_of_day < 8.0 || h_of_day >= 18.0) return 0;
    int n = max_occupants_ - (zone % 3);  // zones differ a bit
    if (h_of_day >= 12.0 && h_of_day < 13.0) n /= 2;  // lunch
    return n < 0 ? 0 : n;
  }

  [[nodiscard]] bool occupied(int zone, double t_s) const {
    return occupants(zone, t_s) > 0;
  }

 private:
  int max_occupants_;
};

/// Time-of-use electricity tariff (EUR/kWh): peak pricing on weekday
/// afternoons — the signal the price-aware controller trades against
/// comfort margins.
class TariffModel {
 public:
  [[nodiscard]] double price_per_kwh(double t_s) const {
    const double h = std::fmod(t_s / 3600.0, 24.0);
    const int day = static_cast<int>(t_s / 86400.0);
    const bool weekday = (day % 7) < 5;
    if (weekday && h >= 16.0 && h < 20.0) return 0.42;  // peak
    if (h >= 7.0 && h < 22.0) return 0.24;              // shoulder
    return 0.12;                                         // night
  }
};

}  // namespace iiot::safety
