// HVAC controllers spanning the paper's continuous-safety spectrum
// (§V-B): from rigid setpoint tracking to deliberate, price-aware
// violation of soft comfort margins.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

namespace iiot::safety {

/// Everything a controller may consult at one decision instant.
struct ControlContext {
  double zone_temp_c = 20.0;
  double outdoor_c = 10.0;
  bool occupied = false;
  int occupants = 0;
  double price_per_kwh = 0.2;
  double max_heat_w = 12000.0;
  double max_cool_w = 8000.0;
  double dt_s = 60.0;
  /// Forecast: seconds until the zone next becomes occupied (0 when
  /// occupied now; "infinite" when nothing is scheduled). Lets
  /// controllers pre-condition instead of greeting occupants with a
  /// cold room.
  double seconds_to_occupancy = 1e18;
};

/// Comfort band applicable at one instant.
struct ComfortBand {
  double low_c = 21.0;
  double high_c = 23.5;
};

class Controller {
 public:
  virtual ~Controller() = default;
  /// Returns requested HVAC power in watts (positive heats).
  virtual double control(const ControlContext& ctx) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Classic thermostat: full power toward a fixed setpoint with
/// hysteresis, occupancy-blind. The "binary safety" strawman.
class BangBangController : public Controller {
 public:
  explicit BangBangController(double setpoint_c = 22.0,
                              double hysteresis_c = 0.5)
      : setpoint_(setpoint_c), hyst_(hysteresis_c) {}

  double control(const ControlContext& ctx) override {
    if (ctx.zone_temp_c < setpoint_ - hyst_) heating_ = true;
    if (ctx.zone_temp_c > setpoint_ + hyst_) heating_ = false;
    if (heating_) return ctx.max_heat_w;
    if (ctx.zone_temp_c > setpoint_ + hyst_) return -ctx.max_cool_w;
    return 0.0;
  }
  [[nodiscard]] std::string name() const override { return "bang-bang"; }

 private:
  double setpoint_;
  double hyst_;
  bool heating_ = false;
};

/// PI tracking of a fixed setpoint: smooth, still occupancy-blind.
class PiController : public Controller {
 public:
  explicit PiController(double setpoint_c = 22.0, double kp = 2500.0,
                        double ki = 2.0)
      : setpoint_(setpoint_c), kp_(kp), ki_(ki) {}

  double control(const ControlContext& ctx) override {
    const double err = setpoint_ - ctx.zone_temp_c;
    integral_ += err * ctx.dt_s;
    // Anti-windup clamp.
    integral_ = std::clamp(integral_, -3000.0, 3000.0);
    return kp_ * err + ki_ * integral_;
  }
  [[nodiscard]] std::string name() const override { return "pi"; }

 private:
  double setpoint_;
  double kp_;
  double ki_;
  double integral_ = 0.0;
};

/// Occupancy-aware comfort band: tight band when occupied, wide setback
/// band when empty — safety treated as a continuous margin.
class ComfortBandController : public Controller {
 public:
  ComfortBandController(ComfortBand occupied = {21.0, 23.5},
                        ComfortBand setback = {15.0, 28.0},
                        double preheat_s = 5400.0)
      : occupied_(occupied), setback_(setback), preheat_s_(preheat_s) {}

  double control(const ControlContext& ctx) override {
    const bool precondition =
        !ctx.occupied && ctx.seconds_to_occupancy < preheat_s_;
    const ComfortBand band =
        (ctx.occupied || precondition) ? occupied_ : setback_;
    const double mid = (band.low_c + band.high_c) / 2.0;
    if (ctx.zone_temp_c < band.low_c) {
      return std::min(ctx.max_heat_w,
                      (mid - ctx.zone_temp_c) * 9000.0);
    }
    if (ctx.zone_temp_c > band.high_c) {
      return std::max(-ctx.max_cool_w,
                      (mid - ctx.zone_temp_c) * 9000.0);
    }
    // Inside the band: proportional drive toward the middle, strong
    // enough to hold position against the envelope load (otherwise the
    // zone equilibrates just outside the band edge and every occupied
    // hour counts as a violation).
    return (mid - ctx.zone_temp_c) * 3000.0;
  }
  [[nodiscard]] std::string name() const override { return "comfort-band"; }

 private:
  ComfortBand occupied_;
  ComfortBand setback_;
  double preheat_s_;
};

/// Price-aware controller: like ComfortBand, but during peak tariff it
/// deliberately lets the zone drift `peak_relax_c` outside the occupied
/// band — the paper's "the system may deliberately violate these margins
/// to minimize energy consumption" made concrete. Whether that pays off
/// depends on the penalty schedule (bench E9).
class PriceAwareController : public Controller {
 public:
  PriceAwareController(ComfortBand occupied = {21.0, 23.5},
                       ComfortBand setback = {15.0, 28.0},
                       double peak_price_threshold = 0.35,
                       double peak_relax_c = 1.5)
      : inner_(occupied, setback),
        occupied_(occupied),
        setback_(setback),
        threshold_(peak_price_threshold),
        relax_(peak_relax_c) {}

  double control(const ControlContext& ctx) override {
    if (ctx.price_per_kwh < threshold_ || !ctx.occupied) {
      return inner_.control(ctx);
    }
    // Peak price: deliberately let the zone sag toward the *relaxed*
    // band edge on the cheap side of the load — below the occupied band
    // in heating weather, above it in cooling weather. This sheds peak
    // power at a bounded, intentional comfort violation.
    const bool heating_regime = ctx.outdoor_c < occupied_.low_c;
    if (heating_regime) {
      // Coast down toward the relaxed lower edge; never burn energy
      // actively cooling into the sag.
      return std::max(0.0, (occupied_.low_c - relax_ * 0.5 -
                            ctx.zone_temp_c) * 3000.0);
    }
    return std::min(0.0, (occupied_.high_c + relax_ * 0.5 -
                          ctx.zone_temp_c) * 3000.0);
  }
  [[nodiscard]] std::string name() const override { return "price-aware"; }

 private:
  ComfortBandController inner_;
  ComfortBand occupied_;
  ComfortBand setback_;
  double threshold_;
  double relax_;
};

}  // namespace iiot::safety
