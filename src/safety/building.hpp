// Multi-zone building simulation tying plant, environment, controllers
// and the comfort/energy/revenue metrics together (bench E9).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "safety/controller.hpp"
#include "safety/environment.hpp"
#include "safety/thermal.hpp"

namespace iiot::safety {

/// Economic and comfort outcome of a simulation run. The revenue model
/// follows the paper: the provider is paid for delivered comfort and
/// penalized for violations, while paying for energy (§V-B).
struct SafetyMetrics {
  double energy_kwh = 0.0;
  double energy_cost = 0.0;
  double violation_degree_hours = 0.0;  // occupied time outside band
  double occupied_hours = 0.0;
  double comfort_payment = 0.0;
  double violation_penalty = 0.0;
  double worst_violation_c = 0.0;

  [[nodiscard]] double revenue() const {
    return comfort_payment - violation_penalty - energy_cost;
  }
  [[nodiscard]] double violation_fraction() const {
    return occupied_hours > 0 ? violation_degree_hours / occupied_hours : 0;
  }
};

struct BuildingConfig {
  int zones = 8;
  double dt_s = 60.0;
  ComfortBand occupied_band{21.0, 23.5};
  double payment_per_occupied_hour = 2.5;  // EUR per comfortable zone-hour
  double penalty_per_degree_hour = 1.8;    // EUR per K*h of violation
};

class BuildingSim {
 public:
  using ControllerFactory = std::function<std::unique_ptr<Controller>()>;

  BuildingSim(BuildingConfig cfg, WeatherModel::Params weather,
              std::uint64_t seed)
      : cfg_(cfg), weather_(weather, seed), occupancy_(8) {
    for (int z = 0; z < cfg_.zones; ++z) {
      ZoneParams p;
      // Perimeter zones leak more than core zones.
      p.resistance_k_per_w = (z % 2 == 0) ? 0.0035 : 0.005;
      zones_.emplace_back(p, 20.0);
    }
  }

  /// Runs `days` of simulated operation with one controller instance per
  /// zone produced by `factory`; returns aggregate metrics.
  SafetyMetrics run(double days, const ControllerFactory& factory) {
    std::vector<std::unique_ptr<Controller>> controllers;
    controllers.reserve(static_cast<std::size_t>(cfg_.zones));
    for (int z = 0; z < cfg_.zones; ++z) controllers.push_back(factory());

    SafetyMetrics m;
    const double end_s = days * 86400.0;
    for (double t = 0.0; t < end_s; t += cfg_.dt_s) {
      const double outdoor = weather_.outdoor_c(t);
      const double price = tariff_.price_per_kwh(t);
      for (int z = 0; z < cfg_.zones; ++z) {
        auto& zone = zones_[static_cast<std::size_t>(z)];
        const int occ = occupancy_.occupants(z, t);
        ControlContext ctx;
        ctx.zone_temp_c = zone.temperature_c();
        ctx.outdoor_c = outdoor;
        ctx.occupied = occ > 0;
        ctx.occupants = occ;
        ctx.price_per_kwh = price;
        ctx.max_heat_w = zone.params().max_heat_w;
        ctx.max_cool_w = zone.params().max_cool_w;
        ctx.dt_s = cfg_.dt_s;
        ctx.seconds_to_occupancy = seconds_to_occupancy(z, t, occ > 0);
        const double requested =
            controllers[static_cast<std::size_t>(z)]->control(ctx);
        const double applied = zone.step(cfg_.dt_s, outdoor, occ, requested);

        const double kwh = std::abs(applied) * cfg_.dt_s / 3.6e6;
        m.energy_kwh += kwh;
        m.energy_cost += kwh * price;
        if (occ > 0) {
          const double hours = cfg_.dt_s / 3600.0;
          m.occupied_hours += hours;
          const double temp = zone.temperature_c();
          double violation = 0.0;
          if (temp < cfg_.occupied_band.low_c) {
            violation = cfg_.occupied_band.low_c - temp;
          } else if (temp > cfg_.occupied_band.high_c) {
            violation = temp - cfg_.occupied_band.high_c;
          }
          if (violation > 0) {
            m.violation_degree_hours += violation * hours;
            m.violation_penalty +=
                violation * hours * cfg_.penalty_per_degree_hour;
            m.worst_violation_c = std::max(m.worst_violation_c, violation);
          } else {
            m.comfort_payment += hours * cfg_.payment_per_occupied_hour;
          }
        }
      }
    }
    return m;
  }

  [[nodiscard]] const BuildingConfig& config() const { return cfg_; }

 private:
  /// Scans the (deterministic) schedule forward for the next occupancy,
  /// up to a 4-hour horizon — the forecast real BMS systems derive from
  /// calendars.
  [[nodiscard]] double seconds_to_occupancy(int zone, double t,
                                            bool occupied_now) const {
    if (occupied_now) return 0.0;
    for (double dt = 600.0; dt <= 4.0 * 3600.0; dt += 600.0) {
      if (occupancy_.occupied(zone, t + dt)) return dt;
    }
    return 1e18;
  }

  BuildingConfig cfg_;
  WeatherModel weather_;
  OccupancySchedule occupancy_;
  TariffModel tariff_;
  std::vector<ZoneThermalModel> zones_;
};

}  // namespace iiot::safety
