// Automated diagnosis of sensing-and-actuation components.
//
// The paper notes (§V-D) that while low-power networking protocols are
// largely self-organizing, "little work has been done on automated
// diagnosis of sensing and actuation components". These detectors run in
// the application tier over node telemetry and flag the classic field
// failures: battery drain outliers, stuck-at sensors, reboot loops, and
// asymmetric links.
#pragma once

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/time.hpp"

namespace iiot::diagnosis {

struct Anomaly {
  enum class Kind { kEnergyDrain, kStuckSensor, kRebootLoop, kAsymmetricLink };
  Kind kind;
  NodeId node = kInvalidNode;
  NodeId peer = kInvalidNode;  // for link anomalies
  std::string detail;
};

/// Flags nodes whose power draw is far above the population median —
/// the signature of a node trapped in overhearing/looping/retry storms.
class EnergyDrainDetector {
 public:
  explicit EnergyDrainDetector(double factor = 3.0) : factor_(factor) {}

  void report(NodeId node, double avg_power_mw) { power_[node] = avg_power_mw; }

  [[nodiscard]] std::vector<Anomaly> anomalies() const {
    std::vector<Anomaly> out;
    if (power_.size() < 3) return out;
    std::vector<double> values;
    values.reserve(power_.size());
    for (const auto& [_, p] : power_) values.push_back(p);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2),
                     values.end());
    const double median = values[values.size() / 2];
    for (const auto& [node, p] : power_) {
      if (median > 0 && p > median * factor_) {
        out.push_back({Anomaly::Kind::kEnergyDrain, node, kInvalidNode,
                       "power " + std::to_string(p) + " mW vs median " +
                           std::to_string(median)});
      }
    }
    return out;
  }

 private:
  double factor_;
  std::map<NodeId, double> power_;
};

/// Flags series that stopped moving: `window` consecutive samples within
/// `epsilon` of each other on a signal that is expected to vary.
class StuckSensorDetector {
 public:
  StuckSensorDetector(std::size_t window = 20, double epsilon = 1e-9)
      : window_(window), epsilon_(epsilon) {}

  void report(NodeId node, double value) {
    auto& h = history_[node];
    h.push_back(value);
    if (h.size() > window_) h.pop_front();
  }

  [[nodiscard]] std::vector<Anomaly> anomalies() const {
    std::vector<Anomaly> out;
    for (const auto& [node, h] : history_) {
      if (h.size() < window_) continue;
      const auto [lo, hi] = std::minmax_element(h.begin(), h.end());
      if (*hi - *lo <= epsilon_) {
        out.push_back({Anomaly::Kind::kStuckSensor, node, kInvalidNode,
                       "flat for " + std::to_string(h.size()) + " samples"});
      }
    }
    return out;
  }

 private:
  std::size_t window_;
  double epsilon_;
  std::map<NodeId, std::deque<double>> history_;
};

/// Flags nodes that rebooted `threshold`+ times within `window`.
class RebootLoopDetector {
 public:
  RebootLoopDetector(int threshold = 3, sim::Duration window = 600'000'000)
      : threshold_(threshold), window_(window) {}

  void report_reboot(NodeId node, sim::Time at) {
    reboots_[node].push_back(at);
  }

  [[nodiscard]] std::vector<Anomaly> anomalies(sim::Time now) const {
    std::vector<Anomaly> out;
    for (const auto& [node, times] : reboots_) {
      int recent = 0;
      for (sim::Time t : times) {
        if (t + window_ >= now) ++recent;
      }
      if (recent >= threshold_) {
        out.push_back({Anomaly::Kind::kRebootLoop, node, kInvalidNode,
                       std::to_string(recent) + " reboots in window"});
      }
    }
    return out;
  }

 private:
  int threshold_;
  sim::Duration window_;
  std::map<NodeId, std::vector<sim::Time>> reboots_;
};

/// Flags links whose two directions report very different quality —
/// routing treats them as usable while acks die on the way back.
class LinkAsymmetryDetector {
 public:
  explicit LinkAsymmetryDetector(double ratio_threshold = 2.5)
      : threshold_(ratio_threshold) {}

  void report_etx(NodeId from, NodeId to, double etx) {
    etx_[{from, to}] = etx;
  }

  [[nodiscard]] std::vector<Anomaly> anomalies() const {
    std::vector<Anomaly> out;
    for (const auto& [link, fwd] : etx_) {
      if (link.first > link.second) continue;  // visit each pair once
      auto rev = etx_.find({link.second, link.first});
      if (rev == etx_.end()) continue;
      const double hi = std::max(fwd, rev->second);
      const double lo = std::max(1e-9, std::min(fwd, rev->second));
      if (hi / lo >= threshold_) {
        out.push_back({Anomaly::Kind::kAsymmetricLink, link.first,
                       link.second,
                       "etx " + std::to_string(fwd) + " vs " +
                           std::to_string(rev->second)});
      }
    }
    return out;
  }

 private:
  double threshold_;
  std::map<std::pair<NodeId, NodeId>, double> etx_;
};

}  // namespace iiot::diagnosis
