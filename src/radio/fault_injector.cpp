#include "radio/fault_injector.hpp"

namespace iiot::radio {

FaultInjector::FaultInjector(Medium& medium, std::uint64_t seed,
                             FaultInjectorConfig cfg)
    : medium_(medium), rng_(seed ^ 0xFA17ULL, 101), cfg_(cfg) {}

void FaultInjector::enable() {
  if (enabled_) return;
  enabled_ = true;
  medium_.set_fault_hook([this](Frame& f) { return decide(f); });
}

void FaultInjector::disable() {
  if (!enabled_) return;
  enabled_ = false;
  medium_.set_fault_hook(nullptr);
}

FaultDecision FaultInjector::decide(Frame& f) {
  ++stats_.examined;
  FaultDecision d;
  // Every coin is flipped on every frame so the RNG stream consumed per
  // frame is constant — replay stays aligned whatever the outcomes are.
  const bool drop = rng_.chance(cfg_.drop_p);
  const bool corrupt = rng_.chance(cfg_.corrupt_p);
  const bool duplicate = rng_.chance(cfg_.duplicate_p);
  const bool delay = rng_.chance(cfg_.delay_p);
  const std::uint32_t flip = rng_.next_u32();
  const auto delay_us = static_cast<sim::Duration>(
      rng_.below(static_cast<std::uint32_t>(cfg_.max_delay) + 1));

  if (corrupt && !f.payload.empty()) {
    // Flip one byte somewhere in the payload: models a bit error that
    // slipped past the FCS. Upper-layer codecs must reject or survive it.
    f.payload[flip % f.payload.size()] ^=
        static_cast<std::uint8_t>(1u << (flip % 8u));
    ++stats_.corrupted;
  }
  if (drop) {
    d.drop = true;
    ++stats_.dropped;
    return d;
  }
  if (delay) {
    d.delay = delay_us;
    ++stats_.delayed;
    return d;
  }
  if (duplicate) {
    d.duplicate = true;
    ++stats_.duplicated;
  }
  return d;
}

}  // namespace iiot::radio
