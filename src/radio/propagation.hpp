// Log-distance path-loss propagation with static log-normal shadowing.
//
// Per-link shadowing is sampled once (deterministically from the channel
// seed and the node pair), which models the quasi-static multipath
// environment of industrial deployments; fast variation is captured by the
// SNR→PRR logistic curve applied per frame.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace iiot::radio {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] inline double distance(const Position& a, const Position& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

struct PropagationConfig {
  double pl0_db = 40.0;            // path loss at reference distance (1 m)
  double exponent = 3.0;           // indoor-industrial path-loss exponent
  double shadowing_sigma_db = 3.0; // log-normal shadowing std-dev
  double tx_power_dbm = 0.0;
  double noise_floor_dbm = -95.0;
  double sensitivity_dbm = -90.0;  // below this, frames are undetectable
  double cca_threshold_dbm = -85.0;
  double capture_db = 8.0;         // SIR needed to survive a collision
};

class Propagation {
 public:
  explicit Propagation(PropagationConfig cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] const PropagationConfig& config() const { return cfg_; }

  /// Received power (dBm) over the a→b link at the configured TX power.
  [[nodiscard]] double rx_dbm(NodeId a, const Position& pa, NodeId b,
                              const Position& pb) {
    double d = std::max(1.0, distance(pa, pb));
    double pl = cfg_.pl0_db + 10.0 * cfg_.exponent * std::log10(d);
    return cfg_.tx_power_dbm - pl + shadowing(a, b);
  }

  /// Frame reception probability from SNR: a logistic curve calibrated so
  /// that SNR 0 dB over the noise floor is hopeless and +10 dB is reliable.
  [[nodiscard]] static double prr_from_snr(double snr_db) {
    double p = 1.0 / (1.0 + std::exp(-(snr_db - 5.0) * 1.1));
    return std::clamp(p, 0.0, 1.0);
  }

  [[nodiscard]] double prr(NodeId a, const Position& pa, NodeId b,
                           const Position& pb) {
    double snr = rx_dbm(a, pa, b, pb) - cfg_.noise_floor_dbm;
    return prr_from_snr(snr);
  }

 private:
  /// Symmetric, memoized per-link shadowing draw.
  double shadowing(NodeId a, NodeId b) {
    if (cfg_.shadowing_sigma_db <= 0.0) return 0.0;
    if (a > b) std::swap(a, b);
    std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    auto it = shadow_.find(key);
    if (it != shadow_.end()) return it->second;
    Rng rng(seed_ ^ key, key);
    double v = rng.normal(0.0, cfg_.shadowing_sigma_db);
    shadow_.emplace(key, v);
    return v;
  }

  PropagationConfig cfg_;
  std::uint64_t seed_;
  std::unordered_map<std::uint64_t, double> shadow_;
};

}  // namespace iiot::radio
