// Log-distance path-loss propagation with static log-normal shadowing.
//
// Per-link shadowing is sampled once (deterministically from the channel
// seed and the node pair), which models the quasi-static multipath
// environment of industrial deployments; fast variation is captured by the
// SNR→PRR logistic curve applied per frame.
//
// All queries are const: the shadowing memo is a mutable cache (a flat
// open-addressing table — link keys hash perfectly well and the probe
// sequence stays in one cache line, unlike unordered_map's node chase).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace iiot::radio {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] inline double distance(const Position& a, const Position& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

struct PropagationConfig {
  double pl0_db = 40.0;            // path loss at reference distance (1 m)
  double exponent = 3.0;           // indoor-industrial path-loss exponent
  double shadowing_sigma_db = 3.0; // log-normal shadowing std-dev
  double tx_power_dbm = 0.0;
  double noise_floor_dbm = -95.0;
  double sensitivity_dbm = -90.0;  // below this, frames are undetectable
  double cca_threshold_dbm = -85.0;
  double capture_db = 8.0;         // SIR needed to survive a collision
};

/// Flat open-addressing memo: uint64 link key -> double. Keys are stored
/// +1 so zero can mark an empty bucket; linear probing over a
/// power-of-two table.
class LinkValueCache {
 public:
  LinkValueCache() : keys_(kInitialBuckets, 0), vals_(kInitialBuckets, 0.0) {}

  [[nodiscard]] const double* find(std::uint64_t key) const {
    const std::uint64_t stored = key + 1;
    std::size_t i = bucket(key);
    while (keys_[i] != 0) {
      if (keys_[i] == stored) return &vals_[i];
      i = (i + 1) & (keys_.size() - 1);
    }
    return nullptr;
  }

  void insert(std::uint64_t key, double v) {
    if ((size_ + 1) * 10 >= keys_.size() * 7) grow();
    std::size_t i = bucket(key);
    while (keys_[i] != 0) i = (i + 1) & (keys_.size() - 1);
    keys_[i] = key + 1;
    vals_[i] = v;
    ++size_;
  }

 private:
  static constexpr std::size_t kInitialBuckets = 64;

  [[nodiscard]] std::size_t bucket(std::uint64_t key) const {
    // SplitMix64 finalizer: link keys are structured (a<<32|b), so mix
    // before masking.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31)) & (keys_.size() - 1);
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<double> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, 0);
    vals_.assign(old_vals.size() * 2, 0.0);
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != 0) insert(old_keys[i] - 1, old_vals[i]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<double> vals_;
  std::size_t size_ = 0;
};

class Propagation {
 public:
  explicit Propagation(PropagationConfig cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] const PropagationConfig& config() const { return cfg_; }

  /// Received power (dBm) over the a→b link at the configured TX power.
  [[nodiscard]] double rx_dbm(NodeId a, const Position& pa, NodeId b,
                              const Position& pb) const {
    double d = std::max(1.0, distance(pa, pb));
    double pl = cfg_.pl0_db + 10.0 * cfg_.exponent * std::log10(d);
    return cfg_.tx_power_dbm - pl + shadowing(a, b);
  }

  /// Frame reception probability from SNR: a logistic curve calibrated so
  /// that SNR 0 dB over the noise floor is hopeless and +10 dB is reliable.
  [[nodiscard]] static double prr_from_snr(double snr_db) {
    double p = 1.0 / (1.0 + std::exp(-(snr_db - 5.0) * 1.1));
    return std::clamp(p, 0.0, 1.0);
  }

  [[nodiscard]] double prr(NodeId a, const Position& pa, NodeId b,
                           const Position& pb) const {
    double snr = rx_dbm(a, pa, b, pb) - cfg_.noise_floor_dbm;
    return prr_from_snr(snr);
  }

 private:
  /// Symmetric, memoized per-link shadowing draw. Logically const: the
  /// memo is a cache of a pure function of (seed, a, b).
  double shadowing(NodeId a, NodeId b) const {
    if (cfg_.shadowing_sigma_db <= 0.0) return 0.0;
    if (a > b) std::swap(a, b);
    std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (const double* v = shadow_.find(key)) return *v;
    Rng rng(seed_ ^ key, key);
    double v = rng.normal(0.0, cfg_.shadowing_sigma_db);
    shadow_.insert(key, v);
    return v;
  }

  PropagationConfig cfg_;
  std::uint64_t seed_;
  mutable LinkValueCache shadow_;
};

}  // namespace iiot::radio
