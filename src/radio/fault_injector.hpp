// Fault-injecting wrapper around the radio Medium (paper §V dependability
// axis): corrupts, drops, duplicates, and reorders frames in flight with
// configured probabilities, from a dedicated deterministic RNG stream.
//
// Installing an injector arms the medium's per-transmission fault hook;
// the injector draws its verdicts independently of the medium's delivery
// RNG, so two runs with the same seed take bit-identical fault decisions
// regardless of traffic interleaving. Used by the property-based scenario
// fuzzer (src/testing) and available to any dependability bench.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "radio/medium.hpp"

namespace iiot::radio {

struct FaultInjectorConfig {
  double drop_p = 0.0;        // frame lost at every receiver
  double corrupt_p = 0.0;     // payload bytes flipped in place
  double duplicate_p = 0.0;   // surviving receptions delivered twice
  double delay_p = 0.0;       // surviving receptions delivered late
  sim::Duration max_delay = 20'000;  // upper bound for the reorder delay
};

struct FaultInjectorStats {
  std::uint64_t examined = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
};

/// RAII: arms the medium's fault hook on construction / enable(), clears
/// it on disable() and destruction. Delay and duplication are mutually
/// exclusive per frame (a delayed frame arrives once).
class FaultInjector {
 public:
  FaultInjector(Medium& medium, std::uint64_t seed,
                FaultInjectorConfig cfg = {});
  ~FaultInjector() { disable(); }
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void enable();
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] const FaultInjectorStats& stats() const { return stats_; }
  [[nodiscard]] const FaultInjectorConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] FaultDecision decide(Frame& f);

  Medium& medium_;
  Rng rng_;
  FaultInjectorConfig cfg_;
  FaultInjectorStats stats_;
  bool enabled_ = false;
};

}  // namespace iiot::radio
