// Link-layer frame model (802.15.4-class).
//
// Frames carry opaque payload bytes for the layer above. Sizes follow the
// 802.15.4 data-frame layout so that airtime — which drives both latency
// and energy — is realistic: PHY preamble+SFD+PHR (6 B) + MHR (9 B) +
// payload + FCS (2 B), at 250 kbit/s.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "obs/ids.hpp"
#include "sim/time.hpp"

namespace iiot::radio {

/// MAC-level frame kind. The radio treats all kinds identically; MAC
/// protocols use them for their handshakes.
enum class FrameType : std::uint8_t {
  kData = 0,
  kAck,
  kStrobe,      // LPL wake-up strobe (X-MAC style)
  kStrobeAck,   // early-ack terminating a strobe train
  kBeacon,      // RI-MAC receiver beacon / TDMA schedule beacon
  kProbe,       // keepalive / diagnostics
};

struct Frame {
  NodeId src = kInvalidNode;
  NodeId dst = kBroadcastNode;
  TenantId tenant = 0;       // PAN-id analogue; separates admin domains
  FrameType type = FrameType::kData;
  std::uint16_t seq = 0;
  Buffer payload;

  // Observability metadata. In-memory only — deliberately NOT counted by
  // size_bytes(), so carrying a trace never changes airtime, energy or any
  // other simulated behavior (a real deployment would reserve header bits;
  // here determinism across obs-on/obs-off matters more than that fidelity).
  obs::TraceId trace = 0;
  obs::SpanRef span = 0;  // span covering this frame's MAC transmission

  [[nodiscard]] bool broadcast() const { return dst == kBroadcastNode; }

  /// Serialized on-air size in bytes (PHY + MHR + payload + FCS).
  [[nodiscard]] std::size_t size_bytes() const {
    return kPhyOverhead + kMacHeader + payload.size() + kFcsBytes;
  }

  static constexpr std::size_t kPhyOverhead = 6;
  static constexpr std::size_t kMacHeader = 9;
  static constexpr std::size_t kFcsBytes = 2;
  /// 802.15.4 max PSDU is 127 B; payload budget after MHR+FCS.
  static constexpr std::size_t kMaxPayload = 127 - kMacHeader - kFcsBytes;
};

/// Airtime of a frame at 250 kbit/s: 32 us per byte.
[[nodiscard]] inline sim::Duration airtime(const Frame& f) {
  return static_cast<sim::Duration>(f.size_bytes()) * 32ULL;
}

[[nodiscard]] inline sim::Duration airtime_bytes(std::size_t total_bytes) {
  return static_cast<sim::Duration>(total_bytes) * 32ULL;
}

}  // namespace iiot::radio
