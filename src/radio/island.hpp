// Spatial islands over one radio world (DESIGN.md §4i).
//
// The island plan is *canonical world structure*, not an execution
// detail: the partitioner is a pure function of node positions and the
// propagation config, and the plan's window quantizes every cross-island
// radio effect. Two runs with the same plan produce bit-identical
// physics at any lane count; changing the plan changes the (still fully
// deterministic) world.
//
// Cross-island transmissions travel as CellTx values through the
// Interchange: the transmitting island posts an immutable snapshot of
// the frame at transmission time, the receiving island applies it at the
// next window boundary as a "ghost" transmission — computing path loss,
// collisions and the SNR coin flip against its own local state (see
// Medium::apply_remote). Quantization to window boundaries is what gives
// the conservative engine its lookahead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "radio/frame.hpp"
#include "radio/medium.hpp"
#include "radio/propagation.hpp"
#include "sim/time.hpp"

namespace iiot::radio {

/// A cross-island transmission snapshot. Immutable once posted; the
/// receiving island derives per-receiver signal strength from `src_pos`
/// through its own Propagation (same seed everywhere, so link budgets
/// are island-independent).
struct CellTx {
  std::uint32_t src_island = 0;
  std::uint64_t seq = 0;  // per-source-island emission counter
  NodeId src = kInvalidNode;
  Position src_pos{};
  ChannelId channel = 0;
  /// Quantized visibility interval: b1 is the first window boundary
  /// strictly after the transmission started (its effect time for the
  /// conservative protocol), b2 the boundary the ghost ends and delivers
  /// at — at least one full window after b1.
  sim::Time b1 = 0;
  sim::Time b2 = 0;
  /// True end of the airtime at the source. The ghost *interferes* (CCA,
  /// collisions, receiver disturbance) only during [b1, air_end): a frame
  /// that finished airing before the receiving island's boundary causally
  /// cannot interfere after it — only its delivery (still at b2) remains.
  /// Without this clipping the stretched [b1, b2) window inflates border
  /// interference by the window/airtime ratio and collapses throughput.
  sim::Time air_end = 0;
  Frame frame;
  FaultDecision fault;
};

struct IslandPlanOptions {
  /// Grid cell edge in meters; 0 derives it from the propagation config
  /// (the conservative maximum link range, see island.cpp).
  double cell_size = 0.0;
  /// Extra link-budget headroom (dB) when deciding island adjacency;
  /// larger margins mark more pairs adjacent (more conservative).
  double margin_db = 0.0;
  /// Cross-island quantization window; 0 → kDefaultWindow.
  sim::Duration window = 0;
  /// NodeId of position index 0 (indices map to consecutive ids). Only
  /// the deterministic shadowing draws consume ids, and only when
  /// shadowing_sigma_db > 0.
  NodeId id_base = 0;
};

/// Default cross-island window: 1 ms. Cross-island deliveries land up to
/// two windows late, so MAC ack timeouts in island worlds must exceed
/// roughly 4 windows + one ack airtime.
inline constexpr sim::Duration kDefaultIslandWindow = 1000;

struct IslandPlan {
  std::size_t count = 0;
  sim::Duration window = kDefaultIslandWindow;
  /// node index (position order handed to the partitioner) → island.
  std::vector<std::uint32_t> island_of;
  /// island → sorted adjacent islands (excluding self): pairs with at
  /// least one radio link that clears min(sensitivity, CCA) - margin.
  std::vector<std::vector<std::uint32_t>> adjacency;
};

/// Grid partitioner: bins positions into square cells of cell_size and
/// numbers non-empty cells row-major. Adjacency is decided per island
/// pair by an exact link-budget check (including the deterministic
/// shadowing draws) over the candidate node pairs geometry cannot rule
/// out. Pure function of its inputs.
[[nodiscard]] IslandPlan plan_islands(const std::vector<Position>& pos,
                                      const PropagationConfig& cfg,
                                      std::uint64_t prop_seed,
                                      const IslandPlanOptions& opt = {});

/// Conservative maximum distance at which a link could still clear
/// min(sensitivity, CCA) - margin, allowing shadowing up to +8 sigma.
[[nodiscard]] double max_link_range(const PropagationConfig& cfg,
                                    double margin_db);

/// Thread-safe mailboxes carrying CellTx between islands. Senders post
/// from their own lane; each receiving island drains its box between
/// windows. Draining sorts by (b1, src_island, seq) — a total order —
/// so the application order is independent of posting interleavings.
class Interchange {
 public:
  explicit Interchange(std::size_t islands);
  Interchange(const Interchange&) = delete;
  Interchange& operator=(const Interchange&) = delete;

  void post(std::size_t dst_island, CellTx tx);

  /// Removes and returns every pending CellTx for `island` with
  /// b1 <= boundary, in canonical (b1, src_island, seq) order.
  [[nodiscard]] std::vector<CellTx> take_until(std::size_t island,
                                               sim::Time boundary);

  /// Earliest pending b1 for `island`, kTimeNever if the box is empty.
  [[nodiscard]] sim::Time next_time(std::size_t island);

  /// Total messages ever posted (diagnostics; read when quiescent).
  [[nodiscard]] std::uint64_t posted() const {
    return posted_.load(std::memory_order_relaxed);
  }

 private:
  struct Mailbox {
    std::mutex mu;
    std::vector<CellTx> msgs;
  };

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<std::uint64_t> posted_{0};
};

}  // namespace iiot::radio
