#include "radio/radio.hpp"

#include <utility>

#include "radio/medium.hpp"

namespace iiot::radio {

Radio::Radio(Medium& medium, sim::Scheduler& sched, NodeId id, Position pos,
             energy::Meter& meter)
    : medium_(medium), sched_(sched), id_(id), pos_(pos), meter_(meter) {
  medium_.attach(this);
  update_energy_state();
}

Radio::~Radio() {
  tx_done_.cancel();
  medium_.detach(this);
}

void Radio::set_position(Position pos) {
  pos_ = pos;
  medium_.invalidate_neighbor_caches();
}

void Radio::set_channel(ChannelId ch) {
  if (ch == channel_) return;
  channel_ = ch;
  medium_.on_receiver_disturbed(*this);
  medium_.invalidate_neighbor_caches();
}

void Radio::set_mode(Mode m) {
  if (m == mode_) return;
  // Leaving listen (or powering down) kills any reception in progress.
  medium_.on_receiver_disturbed(*this);
  mode_ = m;
  update_energy_state();
}

bool Radio::transmit(Frame f, TxDoneHandler on_done) {
  if (!can_transmit()) return false;
  transmitting_ = true;
  ++tx_count_;
  tx_bytes_ += f.size_bytes();
  medium_.on_receiver_disturbed(*this);  // half-duplex: stop receiving
  update_energy_state();
  sim::Duration air = airtime(f);
  medium_.begin_tx(*this, std::move(f));
  tx_done_ = sched_.schedule_after(air, [this, cb = std::move(on_done)] {
    transmitting_ = false;
    update_energy_state();
    if (cb) cb();
  });
  return true;
}

bool Radio::cca_clear() const {
  if (mode_ == Mode::kOff || mode_ == Mode::kSleep) return false;
  return !medium_.channel_busy(*this);
}

void Radio::update_energy_state() {
  energy::RadioState s = energy::RadioState::kOff;
  if (transmitting_) {
    s = energy::RadioState::kTx;
  } else {
    switch (mode_) {
      case Mode::kOff: s = energy::RadioState::kOff; break;
      case Mode::kSleep: s = energy::RadioState::kSleep; break;
      case Mode::kListen: s = energy::RadioState::kListen; break;
    }
  }
  meter_.radio_state(s, sched_.now());
}

void Radio::deliver(const Frame& f, double rssi_dbm) {
  ++rx_count_;
  if (on_receive_) on_receive_(f, rssi_dbm);
}

}  // namespace iiot::radio
