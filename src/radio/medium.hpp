// The shared wireless medium.
//
// Tracks all in-flight transmissions and decides, per potential receiver,
// whether a frame survives: the receiver must be listening on the same
// channel for the whole airtime, the frame must win any collision by the
// capture margin, and it must pass the SNR→PRR coin flip. Cross-tenant
// transmissions interfere exactly like same-tenant ones — this is what the
// administrative-scalability experiment (E6) measures.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "radio/frame.hpp"
#include "radio/propagation.hpp"
#include "radio/radio.hpp"
#include "sim/scheduler.hpp"

namespace iiot::radio {

struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;   // receptions corrupted by overlap
  std::uint64_t snr_losses = 0;   // receptions lost to the PRR coin flip
  std::uint64_t aborted = 0;      // receiver left listen mid-frame
};

class Medium {
 public:
  Medium(sim::Scheduler& sched, PropagationConfig cfg, std::uint64_t seed)
      : sched_(sched), prop_(cfg, seed), rng_(seed ^ 0xD1CEULL, 77) {}
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  [[nodiscard]] Propagation& propagation() { return prop_; }
  [[nodiscard]] const MediumStats& stats() const { return stats_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  /// Expected PRR of the a→b link (for tests and topology construction).
  [[nodiscard]] double link_prr(const Radio& a, const Radio& b) {
    return prop_.prr(a.id(), a.position(), b.id(), b.position());
  }

 private:
  friend class Radio;

  struct ActiveTx {
    std::uint64_t id;
    Radio* src;
    ChannelId channel;
    sim::Time start;
    sim::Time end;
    Frame frame;
  };

  struct Reception {
    std::uint64_t tx_id;
    Radio* receiver;
    double signal_dbm;
    bool corrupted = false;
    bool aborted = false;
  };

  void attach(Radio* r) { radios_.push_back(r); }
  void detach(Radio* r);

  /// Radio API: starts a transmission; schedules its completion.
  void begin_tx(Radio& src, Frame f);

  /// Radio API: the radio at `r` changed mode/channel or started
  /// transmitting — abort any reception in progress there.
  void on_receiver_disturbed(Radio& r);

  /// Radio API: instantaneous energy detect at `r`.
  [[nodiscard]] bool channel_busy(const Radio& r) const;

  void finish_tx(std::uint64_t tx_id);

  double rx_power(const Radio& from, const Radio& to) {
    return prop_.rx_dbm(from.id(), from.position(), to.id(), to.position());
  }

  sim::Scheduler& sched_;
  Propagation prop_;
  Rng rng_;
  MediumStats stats_;
  std::vector<Radio*> radios_;
  std::uint64_t next_tx_id_ = 1;
  std::vector<ActiveTx> active_;
  std::vector<Reception> receptions_;
};

}  // namespace iiot::radio
