// The shared wireless medium.
//
// Tracks all in-flight transmissions and decides, per potential receiver,
// whether a frame survives: the receiver must be listening on the same
// channel for the whole airtime, the frame must win any collision by the
// capture margin, and it must pass the SNR→PRR coin flip. Cross-tenant
// transmissions interfere exactly like same-tenant ones — this is what the
// administrative-scalability experiment (E6) measures.
//
// Hot-path design (DESIGN.md "Performance architecture"):
//   * Each radio has a lazily rebuilt neighbor cache — the precomputed
//     list of radios whose link clears min(sensitivity, CCA threshold),
//     with the link budget memoized alongside — so begin_tx and
//     channel_busy iterate O(neighbors) instead of O(all radios). The
//     cache is invalidated (by epoch bump) on attach, detach, channel
//     change, and position change.
//   * In-flight receptions are stored per receiver (indexed by the
//     radio's dense medium index), so collision checks and
//     reception-abort scans touch only the handful of frames in the air
//     at that one radio, never a global list.
//   * Determinism: neighbor lists preserve attach order, and every
//     ActiveTx records its receivers in creation order, so the delivery
//     RNG stream is bit-for-bit identical to a naive full scan.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/context.hpp"
#include "radio/frame.hpp"
#include "radio/propagation.hpp"
#include "radio/radio.hpp"
#include "sim/scheduler.hpp"

namespace iiot::radio {

struct CellTx;
class Interchange;
struct IslandPlan;

struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;   // receptions corrupted by overlap
  std::uint64_t snr_losses = 0;   // receptions lost to the PRR coin flip
  std::uint64_t aborted = 0;      // receiver left listen mid-frame
  std::uint64_t fault_drops = 0;  // transmissions killed by fault injection
  std::uint64_t fault_dups = 0;   // deliveries duplicated by fault injection
  std::uint64_t fault_delays = 0; // deliveries delayed by fault injection
  std::uint64_t cross_island_tx = 0;  // CellTx posted to adjacent islands
  std::uint64_t cross_island_rx = 0;  // CellTx applied as ghost transmissions
};

/// Per-transmission verdict of an installed fault hook (see
/// Medium::set_fault_hook). The default-constructed decision is "no fault".
struct FaultDecision {
  bool drop = false;        // the frame is lost at every receiver
  bool duplicate = false;   // surviving receptions are delivered twice
  sim::Duration delay = 0;  // surviving receptions arrive this much late
};

class Medium {
 public:
  /// `rng_salt` decorrelates the delivery RNG between island mediums that
  /// must share the same propagation seed (shadowing draws are keyed off
  /// `seed` and have to agree across islands). 0 for ordinary worlds.
  Medium(sim::Scheduler& sched, PropagationConfig cfg, std::uint64_t seed,
         std::uint64_t rng_salt = 0)
      : sched_(sched), prop_(cfg, seed), rng_(seed ^ 0xD1CEULL ^ rng_salt, 77) {
    if (obs::MetricsRegistry* m = obs::metrics(sched_)) {
      using obs::kWorldNode;
      m->attach_counter("radio", "transmissions", kWorldNode,
                        &stats_.transmissions, this);
      m->attach_counter("radio", "deliveries", kWorldNode,
                        &stats_.deliveries, this);
      m->attach_counter("radio", "collisions", kWorldNode,
                        &stats_.collisions, this);
      m->attach_counter("radio", "snr_losses", kWorldNode,
                        &stats_.snr_losses, this);
      m->attach_counter("radio", "aborted", kWorldNode, &stats_.aborted,
                        this);
      m->attach_counter("radio", "fault_drops", kWorldNode,
                        &stats_.fault_drops, this);
      m->attach_counter("radio", "fault_dups", kWorldNode,
                        &stats_.fault_dups, this);
      m->attach_counter("radio", "fault_delays", kWorldNode,
                        &stats_.fault_delays, this);
      m->attach_counter("radio", "cross_island_tx", kWorldNode,
                        &stats_.cross_island_tx, this);
      m->attach_counter("radio", "cross_island_rx", kWorldNode,
                        &stats_.cross_island_rx, this);
    }
  }
  ~Medium() {
    if (obs::MetricsRegistry* m = obs::metrics(sched_)) m->detach(this);
  }
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  [[nodiscard]] Propagation& propagation() { return prop_; }
  [[nodiscard]] const MediumStats& stats() const { return stats_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  /// Transmissions currently on the air (test harnesses time detach/churn
  /// events against this to hit the interesting interleavings).
  [[nodiscard]] std::size_t in_flight() const { return active_.size(); }

  /// Expected PRR of the a→b link (for tests and topology construction).
  [[nodiscard]] double link_prr(const Radio& a, const Radio& b) const {
    return prop_.prr(a.id(), a.position(), b.id(), b.position());
  }

  /// Fault injection hook (testing/fuzzing): consulted once per
  /// transmission. The hook may mutate the frame's payload in place
  /// (corruption) and returns what else should happen to it. Unset in
  /// production; zero cost on the hot path when unset. See
  /// radio::FaultInjector for the standard implementation.
  using FaultHook = std::function<FaultDecision(Frame&)>;
  void set_fault_hook(FaultHook h) { fault_hook_ = std::move(h); }

  /// Turns this medium into one island of a partitioned world (DESIGN.md
  /// §4i): every local transmission is additionally posted to the plan's
  /// adjacent islands as a CellTx snapshot, and apply_remote() replays
  /// snapshots arriving from them. `ix` and `plan` must outlive the
  /// medium; `island` is this medium's id in the plan.
  void set_island_gateway(Interchange* ix, const IslandPlan* plan,
                          std::uint32_t island);

  /// Applies one cross-island transmission as a "ghost": receptions are
  /// marked immediately (the caller invokes this at a window boundary no
  /// later than m.b1, before any local event at that boundary) and the
  /// delivery fires at m.b2. Ghosts compute signal strength from the
  /// carried source position, collide with local and other ghost
  /// receptions alike, and draw their delivery coin from this island's
  /// RNG in application order — all island-local, hence lane-invariant.
  /// Ghosts deliberately emit no trace events: traces are per-island.
  void apply_remote(const CellTx& m);

  /// Ghost transmissions currently registered (tests).
  [[nodiscard]] std::size_t remote_in_flight() const {
    return remote_active_.size();
  }

  /// Cross-checks the medium's internal bookkeeping: dense index maps,
  /// reception lists vs. active transmissions, receiver liveness. Returns
  /// an empty string when consistent, else a description of the first
  /// violation. O(radios + receptions); meant for test harnesses, not the
  /// hot path.
  [[nodiscard]] std::string check_consistency() const;

  /// Canary hook for validating the fuzz harness: when enabled, detach()
  /// deliberately skips removing the departing radio from in-flight
  /// reception bookkeeping — the class of bug check_consistency() exists
  /// to catch. Never enable outside tests.
  void debug_set_skip_detach_cleanup(bool on) {
    debug_skip_detach_cleanup_ = on;
  }

 private:
  friend class Radio;

  /// One reception in progress at a given radio (implicit from the list
  /// it lives in).
  struct Reception {
    std::uint64_t tx_id;
    double signal_dbm;
    bool corrupted = false;
    bool aborted = false;
  };

  struct ActiveTx {
    std::uint64_t id;
    Radio* src;
    ChannelId channel;
    sim::Time start;
    sim::Time end;
    Frame frame;
    FaultDecision fault;
    obs::SpanRef obs_span = 0;  // radio "tx" span covering the airtime
    /// Receivers with a reception for this tx, in creation order — the
    /// order the delivery loop (and thus the delivery RNG) follows.
    std::vector<Radio*> receivers;
  };

  /// A cross-island transmission being replayed locally. Lives from
  /// apply_remote() until its delivery at b2. The high id bit keeps ghost
  /// reception entries disjoint from local tx ids in rx_at_.
  struct RemoteActive {
    std::uint64_t id;
    NodeId src;
    Position src_pos;
    ChannelId channel;
    sim::Time b1;
    sim::Time b2;
    sim::Time air_end;  // interference stops here; delivery still at b2
    Frame frame;
    FaultDecision fault;
    std::vector<Radio*> receivers;
  };

  static constexpr std::uint64_t kRemoteIdBit = 1ULL << 63;

  /// One entry of a radio's neighbor cache: a radio in link range plus the
  /// memoized symmetric link budget between the two.
  struct Neighbor {
    Radio* radio;
    double signal_dbm;
  };

  struct NeighborCache {
    std::uint64_t epoch = 0;  // valid iff equal to cache_epoch_
    std::vector<Neighbor> list;
  };

  void attach(Radio* r);
  void detach(Radio* r);

  /// Any event that changes who can hear whom (topology, membership,
  /// channel plan) invalidates every neighbor list in O(1); lists rebuild
  /// lazily on next use.
  void invalidate_neighbor_caches() { ++cache_epoch_; }

  /// The radios able to hear `r` (and vice versa — links are symmetric),
  /// in attach order, with memoized link budget. Rebuilt if stale.
  [[nodiscard]] const std::vector<Neighbor>& neighbors_of(const Radio& r)
      const;

  /// Radio API: starts a transmission; schedules its completion.
  void begin_tx(Radio& src, Frame f);

  /// Radio API: the radio at `r` changed mode/channel or started
  /// transmitting — abort any reception in progress there.
  void on_receiver_disturbed(Radio& r);

  /// Radio API: instantaneous energy detect at `r`.
  [[nodiscard]] bool channel_busy(const Radio& r) const;

  void finish_tx(std::uint64_t tx_id);
  void finish_remote(std::uint64_t id);

  /// True iff the reception `rx_id` still radiates energy at `t`. Local
  /// receptions radiate for as long as they are listed (entries die at
  /// the exact airtime end); ghost receptions only during [b1, air_end) —
  /// after the true airtime they merely wait for their b2 delivery and
  /// neither corrupt other receptions nor get corrupted or aborted.
  [[nodiscard]] bool radiates_at(std::uint64_t rx_id, sim::Time t) const;

  /// Fault-path delivery of a delayed frame: the receiver is looked up by
  /// id at fire time so the closure never dereferences a detached radio.
  void deliver_late(NodeId to, const Frame& f, double signal_dbm,
                    ChannelId channel);

  [[nodiscard]] double rx_power(const Radio& from, const Radio& to) const {
    return prop_.rx_dbm(from.id(), from.position(), to.id(), to.position());
  }

  sim::Scheduler& sched_;
  Propagation prop_;
  Rng rng_;
  MediumStats stats_;
  std::vector<Radio*> radios_;
  std::uint64_t next_tx_id_ = 1;
  std::vector<ActiveTx> active_;
  std::vector<RemoteActive> remote_active_;
  std::uint64_t next_remote_id_ = kRemoteIdBit | 1;
  Interchange* island_ix_ = nullptr;        // island gateway (nullptr = off)
  const IslandPlan* island_plan_ = nullptr;
  std::uint32_t island_id_ = 0;
  std::uint64_t island_seq_ = 1;            // per-island CellTx emission seq
  std::vector<std::vector<Reception>> rx_at_;  // by medium index
  mutable std::vector<NeighborCache> neighbors_;
  std::uint64_t cache_epoch_ = 1;
  FaultHook fault_hook_;
  bool debug_skip_detach_cleanup_ = false;
};

}  // namespace iiot::radio
