// Half-duplex radio transceiver model.
//
// A Radio is commanded by its MAC into Off/Sleep/Listen modes and can
// transmit one frame at a time. Reception is mediated by the shared
// Medium (see medium.hpp): a frame is delivered only if the radio stayed
// in Listen mode for the frame's whole airtime and the frame survived
// collisions and SNR-based loss. Every state change is charged to the
// node's energy meter.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "energy/meter.hpp"
#include "radio/frame.hpp"
#include "radio/propagation.hpp"
#include "sim/scheduler.hpp"

namespace iiot::radio {

class Medium;

/// Commanded radio mode (what the MAC asked for). While transmitting the
/// radio is additionally in a transient TX state.
enum class Mode : std::uint8_t { kOff = 0, kSleep, kListen };

class Radio {
 public:
  using ReceiveHandler = std::function<void(const Frame&, double rssi_dbm)>;
  using TxDoneHandler = std::function<void()>;

  Radio(Medium& medium, sim::Scheduler& sched, NodeId id, Position pos,
        energy::Meter& meter);
  ~Radio();
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const Position& position() const { return pos_; }
  /// Moving a radio invalidates every cached link budget in the medium.
  void set_position(Position pos);

  [[nodiscard]] ChannelId channel() const { return channel_; }
  /// Switching channel aborts any in-progress reception.
  void set_channel(ChannelId ch);

  [[nodiscard]] Mode mode() const { return mode_; }
  void set_mode(Mode m);

  [[nodiscard]] bool transmitting() const { return transmitting_; }

  /// True when the radio can accept a transmit request right now.
  [[nodiscard]] bool can_transmit() const {
    return mode_ != Mode::kOff && !transmitting_;
  }

  /// Starts transmitting `f`; `on_done` fires when the frame leaves the
  /// antenna. Returns false (and does nothing) if the radio is off or
  /// already transmitting.
  bool transmit(Frame f, TxDoneHandler on_done);

  /// Instantaneous clear-channel assessment. Requires the radio to be on.
  [[nodiscard]] bool cca_clear() const;

  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }

  /// Frames handed to the receive handler since construction.
  [[nodiscard]] std::uint64_t frames_received() const { return rx_count_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return tx_count_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return tx_bytes_; }

 private:
  friend class Medium;

  void update_energy_state();
  /// Called by the medium when a frame addressed through the ether
  /// completes successfully at this radio.
  void deliver(const Frame& f, double rssi_dbm);

  Medium& medium_;
  sim::Scheduler& sched_;
  NodeId id_;
  Position pos_;
  energy::Meter& meter_;
  std::size_t medium_index_ = 0;  // dense index into the medium's tables
  ChannelId channel_ = 11;
  Mode mode_ = Mode::kOff;
  bool transmitting_ = false;
  sim::EventHandle tx_done_;  // cancelled on destruction: the tx-done
                              // callback must never outlive the radio
  ReceiveHandler on_receive_;
  std::uint64_t rx_count_ = 0;
  std::uint64_t tx_count_ = 0;
  std::uint64_t tx_bytes_ = 0;
};

}  // namespace iiot::radio
