#include "radio/island.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace iiot::radio {

double max_link_range(const PropagationConfig& cfg, double margin_db) {
  // Strongest credible link budget: path loss only, minus the floor the
  // hot paths test against, plus the adjacency margin and an 8-sigma
  // shadowing allowance (beyond which we declare links nonexistent by
  // design — the plan, not chance, defines the world).
  const double floor_dbm =
      std::min(cfg.sensitivity_dbm, cfg.cca_threshold_dbm) - margin_db;
  const double budget_db = cfg.tx_power_dbm - cfg.pl0_db +
                           8.0 * cfg.shadowing_sigma_db - floor_dbm;
  if (budget_db <= 0.0) return 1.0;
  return std::max(1.0, std::pow(10.0, budget_db / (10.0 * cfg.exponent)));
}

IslandPlan plan_islands(const std::vector<Position>& pos,
                        const PropagationConfig& cfg, std::uint64_t prop_seed,
                        const IslandPlanOptions& opt) {
  IslandPlan plan;
  plan.window = opt.window == 0 ? kDefaultIslandWindow : opt.window;
  plan.island_of.assign(pos.size(), 0);
  if (pos.empty()) return plan;

  const double range = max_link_range(cfg, opt.margin_db);
  const double cell = opt.cell_size > 0.0 ? opt.cell_size : range;

  double min_x = pos[0].x, min_y = pos[0].y;
  for (const Position& p : pos) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
  }

  // Row-major numbering of non-empty cells; std::map keys sort (gy, gx),
  // so island ids are a pure function of the position set.
  auto cell_of = [&](const Position& p) {
    const auto gx = static_cast<std::int64_t>(std::floor((p.x - min_x) / cell));
    const auto gy = static_cast<std::int64_t>(std::floor((p.y - min_y) / cell));
    return std::pair<std::int64_t, std::int64_t>{gy, gx};
  };
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint32_t> ids;
  for (const Position& p : pos) ids.emplace(cell_of(p), 0);
  std::uint32_t next = 0;
  for (auto& [key, id] : ids) id = next++;
  plan.count = next;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    plan.island_of[i] = ids.at(cell_of(pos[i]));
  }

  // Adjacency: geometry proposes (cells within `range` of each other),
  // an exact link-budget check over the node pairs disposes. The check
  // uses the same Propagation (same seed) the island mediums run with,
  // so "adjacent" exactly means "at least one detectable link exists".
  const double floor_dbm =
      std::min(cfg.sensitivity_dbm, cfg.cca_threshold_dbm) - opt.margin_db;
  Propagation prop(cfg, prop_seed);
  std::vector<std::vector<std::size_t>> members(plan.count);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    members[plan.island_of[i]].push_back(i);
  }
  const auto reach =
      static_cast<std::int64_t>(std::ceil(range / cell)) + 1;
  plan.adjacency.assign(plan.count, {});
  for (auto ita = ids.begin(); ita != ids.end(); ++ita) {
    for (auto itb = std::next(ita); itb != ids.end(); ++itb) {
      const auto [ya, xa] = ita->first;
      const auto [yb, xb] = itb->first;
      if (std::abs(ya - yb) > reach || std::abs(xa - xb) > reach) continue;
      const std::uint32_t a = ita->second;
      const std::uint32_t b = itb->second;
      bool linked = false;
      for (std::size_t i : members[a]) {
        for (std::size_t j : members[b]) {
          // Ids only key the shadowing draw, which is what we reproduce
          // here; id_base maps position indices onto the world's ids.
          const auto ia = static_cast<NodeId>(opt.id_base + i);
          const auto jb = static_cast<NodeId>(opt.id_base + j);
          if (prop.rx_dbm(ia, pos[i], jb, pos[j]) >= floor_dbm) {
            linked = true;
            break;
          }
        }
        if (linked) break;
      }
      if (linked) {
        plan.adjacency[a].push_back(b);
        plan.adjacency[b].push_back(a);
      }
    }
  }
  for (auto& adj : plan.adjacency) std::sort(adj.begin(), adj.end());
  return plan;
}

Interchange::Interchange(std::size_t islands) {
  boxes_.reserve(islands);
  for (std::size_t i = 0; i < islands; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Interchange::post(std::size_t dst_island, CellTx tx) {
  Mailbox& box = *boxes_.at(dst_island);
  std::lock_guard<std::mutex> lk(box.mu);
  box.msgs.push_back(std::move(tx));
  posted_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<CellTx> Interchange::take_until(std::size_t island,
                                            sim::Time boundary) {
  Mailbox& box = *boxes_.at(island);
  std::vector<CellTx> out;
  {
    std::lock_guard<std::mutex> lk(box.mu);
    auto keep = box.msgs.begin();
    for (auto it = box.msgs.begin(); it != box.msgs.end(); ++it) {
      if (it->b1 <= boundary) {
        out.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    box.msgs.erase(keep, box.msgs.end());
  }
  // (b1, src_island, seq) is a total order over all posted messages, so
  // the application order is interleaving-independent.
  std::sort(out.begin(), out.end(), [](const CellTx& a, const CellTx& b) {
    if (a.b1 != b.b1) return a.b1 < b.b1;
    if (a.src_island != b.src_island) return a.src_island < b.src_island;
    return a.seq < b.seq;
  });
  return out;
}

sim::Time Interchange::next_time(std::size_t island) {
  Mailbox& box = *boxes_.at(island);
  std::lock_guard<std::mutex> lk(box.mu);
  sim::Time t = sim::kTimeNever;
  for (const CellTx& m : box.msgs) t = std::min(t, m.b1);
  return t;
}

}  // namespace iiot::radio
