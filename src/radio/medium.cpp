#include "radio/medium.hpp"

#include <algorithm>

namespace iiot::radio {

void Medium::detach(Radio* r) {
  std::erase(radios_, r);
  std::erase_if(receptions_, [r](const Reception& rec) {
    return rec.receiver == r;
  });
  std::erase_if(active_, [r](const ActiveTx& tx) { return tx.src == r; });
}

void Medium::begin_tx(Radio& src, Frame f) {
  ++stats_.transmissions;
  const sim::Time start = sched_.now();
  const sim::Time end = start + airtime(f);
  const std::uint64_t id = next_tx_id_++;

  // Start receptions at every radio currently able to hear this frame.
  for (Radio* r : radios_) {
    if (r == &src) continue;
    if (r->channel() != src.channel()) continue;
    if (r->mode() != Mode::kListen || r->transmitting()) continue;
    const double sig = rx_power(src, *r);
    if (sig < prop_.config().sensitivity_dbm) continue;

    Reception rec{id, r, sig};
    // Collision handling: compare against receptions already in progress
    // at this radio. The stronger signal survives only if it clears the
    // capture margin; otherwise both are corrupted.
    for (Reception& other : receptions_) {
      if (other.receiver != r || other.aborted) continue;
      const double margin = prop_.config().capture_db;
      const bool new_wins = sig >= other.signal_dbm + margin;
      const bool old_wins = other.signal_dbm >= sig + margin;
      if (!old_wins) {
        if (!other.corrupted) ++stats_.collisions;
        other.corrupted = true;
      }
      if (!new_wins) {
        if (!rec.corrupted) ++stats_.collisions;
        rec.corrupted = true;
      }
    }
    receptions_.push_back(std::move(rec));
  }

  active_.push_back(ActiveTx{id, &src, src.channel(), start, end, std::move(f)});
  sched_.schedule_at(end, [this, id] { finish_tx(id); });
}

void Medium::on_receiver_disturbed(Radio& r) {
  for (Reception& rec : receptions_) {
    if (rec.receiver == &r && !rec.aborted) {
      rec.aborted = true;
      ++stats_.aborted;
    }
  }
}

bool Medium::channel_busy(const Radio& r) const {
  for (const ActiveTx& tx : active_) {
    if (tx.channel != r.channel()) continue;
    if (tx.src == &r) return true;
    // const_cast-free power query: Propagation caches per-link shadowing,
    // so the lookup is logically const but mutates the memo table.
    auto& self = const_cast<Medium&>(*this);
    double sig = self.rx_power(*tx.src, r);
    if (sig >= prop_.config().cca_threshold_dbm) return true;
  }
  return false;
}

void Medium::finish_tx(std::uint64_t tx_id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [tx_id](const ActiveTx& t) { return t.id == tx_id; });
  if (it == active_.end()) return;
  ActiveTx tx = std::move(*it);
  active_.erase(it);

  // Deliver surviving receptions.
  for (auto rit = receptions_.begin(); rit != receptions_.end();) {
    if (rit->tx_id != tx_id) {
      ++rit;
      continue;
    }
    Reception rec = *rit;
    rit = receptions_.erase(rit);
    if (rec.aborted || rec.corrupted) continue;
    // Receiver must still be listening on the same channel.
    if (rec.receiver->mode() != Mode::kListen ||
        rec.receiver->transmitting() ||
        rec.receiver->channel() != tx.channel) {
      ++stats_.aborted;
      continue;
    }
    const double snr = rec.signal_dbm - prop_.config().noise_floor_dbm;
    if (!rng_.chance(Propagation::prr_from_snr(snr))) {
      ++stats_.snr_losses;
      continue;
    }
    ++stats_.deliveries;
    rec.receiver->deliver(tx.frame, rec.signal_dbm);
  }
}

}  // namespace iiot::radio
