#include "radio/medium.hpp"

#include <algorithm>

#include "radio/island.hpp"

namespace iiot::radio {

void Medium::set_island_gateway(Interchange* ix, const IslandPlan* plan,
                                std::uint32_t island) {
  island_ix_ = ix;
  island_plan_ = plan;
  island_id_ = island;
}

void Medium::attach(Radio* r) {
  r->medium_index_ = radios_.size();
  radios_.push_back(r);
  rx_at_.emplace_back();
  neighbors_.emplace_back();
  invalidate_neighbor_caches();
}

void Medium::detach(Radio* r) {
  // Order-preserving removal: reception creation order follows radios_
  // order, and the delivery RNG stream must not depend on who detached.
  const std::size_t idx = r->medium_index_;
  radios_.erase(radios_.begin() + static_cast<std::ptrdiff_t>(idx));
  rx_at_.erase(rx_at_.begin() + static_cast<std::ptrdiff_t>(idx));
  for (std::size_t i = idx; i < radios_.size(); ++i) {
    radios_[i]->medium_index_ = i;
  }
  neighbors_.pop_back();
  invalidate_neighbor_caches();

  if (debug_skip_detach_cleanup_) return;  // canary: leave stale bookkeeping

  for (ActiveTx& tx : active_) {
    std::erase(tx.receivers, r);
  }
  // Ghost transmissions outlive any single radio (their source lives on
  // another island); only the departing receiver is forgotten.
  for (RemoteActive& rt : remote_active_) {
    std::erase(rt.receivers, r);
  }
  // Transmissions sourced by the departing radio die with it, including
  // their receptions in progress at other radios.
  for (ActiveTx& tx : active_) {
    if (tx.src != r) continue;
    for (Radio* rcv : tx.receivers) {
      auto& list = rx_at_[rcv->medium_index_];
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].tx_id == tx.id) {
          list[i] = list.back();
          list.pop_back();
          break;
        }
      }
    }
  }
  obs::Tracer* t = obs::tracer(sched_);
  std::erase_if(active_, [r, t](const ActiveTx& tx) {
    if (tx.src != r) return false;
    // Close the airtime span of transmissions dying with their source so
    // traces do not accumulate spans for radios that no longer exist.
    if (t != nullptr) t->end(tx.obs_span, "detached", 1);
    return true;
  });
}

const std::vector<Medium::Neighbor>& Medium::neighbors_of(
    const Radio& r) const {
  NeighborCache& cache = neighbors_[r.medium_index_];
  if (cache.epoch != cache_epoch_) {
    cache.list.clear();
    // A neighbor is anyone whose link budget clears the weaker of the two
    // thresholds the hot paths test against; begin_tx/channel_busy apply
    // their exact threshold on top of the cached budget.
    const double floor_dbm = std::min(prop_.config().sensitivity_dbm,
                                      prop_.config().cca_threshold_dbm);
    for (Radio* other : radios_) {
      if (other == &r) continue;
      const double sig = rx_power(r, *other);
      if (sig >= floor_dbm) cache.list.push_back(Neighbor{other, sig});
    }
    cache.epoch = cache_epoch_;
  }
  return cache.list;
}

void Medium::begin_tx(Radio& src, Frame f) {
  ++stats_.transmissions;
  const sim::Time start = sched_.now();
  const sim::Time end = start + airtime(f);
  const std::uint64_t id = next_tx_id_++;

  ActiveTx tx{id, &src, src.channel(), start, end, std::move(f), {}, 0, {}};
  if (obs::Tracer* t = obs::tracer(sched_)) {
    tx.obs_span = t->begin(tx.frame.trace, src.id(), obs::Layer::kRadio,
                           "tx", tx.frame.span);
  }
  if (fault_hook_) {
    tx.fault = fault_hook_(tx.frame);
    if (tx.fault.drop) ++stats_.fault_drops;
    if (tx.fault.duplicate) ++stats_.fault_dups;
    if (tx.fault.delay > 0) ++stats_.fault_delays;
  }

  // Island gateway: snapshot the (post-fault-hook) frame for adjacent
  // islands, quantized to the plan's window boundaries. The fault verdict
  // rides along so drop/dup/delay apply identically at every receiver of
  // the transmission, local or remote.
  if (island_ix_ != nullptr) {
    const std::vector<std::uint32_t>& adj =
        island_plan_->adjacency[island_id_];
    if (!adj.empty()) {
      const sim::Duration w = island_plan_->window;
      CellTx cell;
      cell.src_island = island_id_;
      cell.src = src.id();
      cell.src_pos = src.position();
      cell.channel = tx.channel;
      cell.b1 = (start / w + 1) * w;
      cell.b2 = std::max((end / w + 1) * w, cell.b1 + w);
      cell.air_end = end;
      cell.frame = tx.frame;
      cell.frame.trace = 0;  // traces are per-island; ghosts do not trace
      cell.frame.span = 0;
      cell.fault = tx.fault;
      for (std::uint32_t dst : adj) {
        cell.seq = island_seq_++;
        ++stats_.cross_island_tx;
        island_ix_->post(dst, cell);
      }
    }
  }

  // Start receptions at every radio currently able to hear this frame —
  // O(neighbors), not O(all radios).
  for (const Neighbor& n : neighbors_of(src)) {
    Radio* r = n.radio;
    if (r->channel() != src.channel()) continue;
    if (r->mode() != Mode::kListen || r->transmitting()) continue;
    if (n.signal_dbm < prop_.config().sensitivity_dbm) continue;

    // Collision handling: compare against receptions already in progress
    // at this radio. The stronger signal survives only if it clears the
    // capture margin; otherwise both are corrupted.
    auto& list = rx_at_[r->medium_index_];
    bool corrupted = false;
    for (Reception& other : list) {
      if (other.aborted) continue;
      if (!radiates_at(other.tx_id, start)) continue;
      const double margin = prop_.config().capture_db;
      const bool new_wins = n.signal_dbm >= other.signal_dbm + margin;
      const bool old_wins = other.signal_dbm >= n.signal_dbm + margin;
      if (!old_wins) {
        if (!other.corrupted) ++stats_.collisions;
        other.corrupted = true;
      }
      if (!new_wins) {
        if (!corrupted) ++stats_.collisions;
        corrupted = true;
      }
    }
    list.push_back(Reception{id, n.signal_dbm, corrupted, false});
    tx.receivers.push_back(r);
  }

  active_.push_back(std::move(tx));
  sched_.schedule_at(end, [this, id] { finish_tx(id); });
}

void Medium::apply_remote(const CellTx& m) {
  ++stats_.cross_island_rx;
  RemoteActive rt{next_remote_id_++, m.src,   m.src_pos,  m.channel,
                  m.b1,              m.b2,    m.air_end,  m.frame,
                  m.fault,           {}};
  // A frame whose true airtime ended before this island's boundary
  // radiates nothing here anymore — it only delivers at b2.
  const bool radiates = m.air_end > m.b1;

  // Mirror of begin_tx's reception marking, with the signal computed from
  // the carried source position (the source radio lives on another
  // island). Radios are visited in attach order, same as a neighbor list.
  for (Radio* r : radios_) {
    if (r->channel() != m.channel) continue;
    if (r->mode() != Mode::kListen || r->transmitting()) continue;
    const double sig =
        prop_.rx_dbm(m.src, m.src_pos, r->id(), r->position());
    if (sig < prop_.config().sensitivity_dbm) continue;

    auto& list = rx_at_[r->medium_index_];
    bool corrupted = false;
    for (Reception& other : list) {
      if (other.aborted) continue;
      if (!radiates || !radiates_at(other.tx_id, m.b1)) continue;
      const double margin = prop_.config().capture_db;
      const bool new_wins = sig >= other.signal_dbm + margin;
      const bool old_wins = other.signal_dbm >= sig + margin;
      if (!old_wins) {
        if (!other.corrupted) ++stats_.collisions;
        other.corrupted = true;
      }
      if (!new_wins) {
        if (!corrupted) ++stats_.collisions;
        corrupted = true;
      }
    }
    list.push_back(Reception{rt.id, sig, corrupted, false});
    rt.receivers.push_back(r);
  }

  const std::uint64_t id = rt.id;
  remote_active_.push_back(std::move(rt));
  sched_.schedule_at(m.b2, [this, id] { finish_remote(id); });
}

bool Medium::radiates_at(std::uint64_t rx_id, sim::Time t) const {
  if ((rx_id & kRemoteIdBit) == 0) return true;
  for (const RemoteActive& rt : remote_active_) {
    if (rt.id == rx_id) return t >= rt.b1 && t < rt.air_end;
  }
  return false;  // ghost already finished; entries die with it anyway
}

void Medium::finish_remote(std::uint64_t id) {
  auto it = std::find_if(remote_active_.begin(), remote_active_.end(),
                         [id](const RemoteActive& t) { return t.id == id; });
  if (it == remote_active_.end()) return;
  RemoteActive rt = std::move(*it);
  remote_active_.erase(it);

  // Delivery loop identical to finish_tx, minus tracing (per-island),
  // firing at the quantized b2 rather than the true airtime end.
  for (Radio* receiver : rt.receivers) {
    auto& list = rx_at_[receiver->medium_index_];
    double signal_dbm = 0.0;
    bool dead = true;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].tx_id != rt.id) continue;
      signal_dbm = list[i].signal_dbm;
      dead = list[i].aborted || list[i].corrupted;
      list[i] = list.back();
      list.pop_back();
      break;
    }
    if (dead || rt.fault.drop) continue;
    // No receiver-state check here, unlike finish_tx: the true airtime
    // ended at air_end, and any disturbance before that already aborted
    // the reception. What the receiver does in the [air_end, b2) gap —
    // pure quantization artifact — cannot un-receive the frame.
    const double snr = signal_dbm - prop_.config().noise_floor_dbm;
    if (!rng_.chance(Propagation::prr_from_snr(snr))) {
      ++stats_.snr_losses;
      continue;
    }
    if (rt.fault.delay > 0) {
      sched_.schedule_after(
          rt.fault.delay,
          [this, to = receiver->id(), f = rt.frame, signal_dbm,
           ch = rt.channel] { deliver_late(to, f, signal_dbm, ch); });
      continue;
    }
    ++stats_.deliveries;
    receiver->deliver(rt.frame, signal_dbm);
    if (rt.fault.duplicate) {
      ++stats_.deliveries;
      receiver->deliver(rt.frame, signal_dbm);
    }
  }
}

void Medium::on_receiver_disturbed(Radio& r) {
  const sim::Time now = sched_.now();
  for (Reception& rec : rx_at_[r.medium_index_]) {
    if (!rec.aborted && radiates_at(rec.tx_id, now)) {
      rec.aborted = true;
      ++stats_.aborted;
    }
  }
}

bool Medium::channel_busy(const Radio& r) const {
  if (active_.empty() && remote_active_.empty()) return false;
  const std::vector<Neighbor>& neigh = neighbors_of(r);
  for (const ActiveTx& tx : active_) {
    if (tx.channel != r.channel()) continue;
    if (tx.src == &r) return true;
    // A transmitter absent from the neighbor list is below
    // min(sensitivity, CCA) and therefore cannot trip energy detect.
    for (const Neighbor& n : neigh) {
      if (n.radio == tx.src) {
        if (n.signal_dbm >= prop_.config().cca_threshold_dbm) return true;
        break;
      }
    }
  }
  // Ghost transmissions radiate energy only while their true airtime
  // overlaps local visibility: [b1, air_end). No neighbor cache covers
  // off-island sources, so the (rare) cross-island budget is computed on
  // the fly.
  const sim::Time now = sched_.now();
  for (const RemoteActive& rt : remote_active_) {
    if (rt.channel != r.channel()) continue;
    if (now < rt.b1 || now >= rt.air_end) continue;
    if (prop_.rx_dbm(rt.src, rt.src_pos, r.id(), r.position()) >=
        prop_.config().cca_threshold_dbm) {
      return true;
    }
  }
  return false;
}

void Medium::finish_tx(std::uint64_t tx_id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [tx_id](const ActiveTx& t) { return t.id == tx_id; });
  if (it == active_.end()) return;
  ActiveTx tx = std::move(*it);
  active_.erase(it);
  obs::Tracer* t = obs::tracer(sched_);

  // Deliver surviving receptions in creation order. Each entry is removed
  // from its receiver's list *before* any delivery callback runs, so a
  // handler that synchronously transmits or changes mode can neither
  // re-abort a consumed entry nor miss the not-yet-delivered ones.
  for (Radio* receiver : tx.receivers) {
    auto& list = rx_at_[receiver->medium_index_];
    double signal_dbm = 0.0;
    bool dead = true;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].tx_id != tx_id) continue;
      signal_dbm = list[i].signal_dbm;
      dead = list[i].aborted || list[i].corrupted;
      list[i] = list.back();
      list.pop_back();
      break;
    }
    if (dead || tx.fault.drop) continue;
    // Receiver must still be listening on the same channel.
    if (receiver->mode() != Mode::kListen || receiver->transmitting() ||
        receiver->channel() != tx.channel) {
      ++stats_.aborted;
      continue;
    }
    const double snr = signal_dbm - prop_.config().noise_floor_dbm;
    if (!rng_.chance(Propagation::prr_from_snr(snr))) {
      ++stats_.snr_losses;
      continue;
    }
    if (tx.fault.delay > 0) {
      // Reordering fault: the frame arrives late, possibly after frames
      // transmitted afterwards. Lifetime-safe via id lookup at fire time.
      sched_.schedule_after(
          tx.fault.delay,
          [this, to = receiver->id(), f = tx.frame, signal_dbm,
           ch = tx.channel] { deliver_late(to, f, signal_dbm, ch); });
      continue;
    }
    ++stats_.deliveries;
    if (t != nullptr) {
      t->instant(tx.frame.trace, receiver->id(), obs::Layer::kRadio, "rx",
                 tx.obs_span);
    }
    receiver->deliver(tx.frame, signal_dbm);
    if (tx.fault.duplicate) {
      ++stats_.deliveries;
      if (t != nullptr) {
        t->instant(tx.frame.trace, receiver->id(), obs::Layer::kRadio, "rx",
                   tx.obs_span);
      }
      receiver->deliver(tx.frame, signal_dbm);
    }
  }
  if (t != nullptr) t->end(tx.obs_span);
}

void Medium::deliver_late(NodeId to, const Frame& f, double signal_dbm,
                          ChannelId channel) {
  for (Radio* r : radios_) {
    if (r->id() != to) continue;
    // The late frame is only hearable if the radio still listens there.
    if (r->mode() != Mode::kListen || r->transmitting() ||
        r->channel() != channel) {
      ++stats_.aborted;
      return;
    }
    ++stats_.deliveries;
    if (obs::Tracer* t = obs::tracer(sched_)) {
      // Parent deliberately 0: the originating airtime span has long since
      // closed, and a late arrival outside its parent's bounds would break
      // the nesting invariant.
      t->instant(f.trace, r->id(), obs::Layer::kRadio, "rx_late");
    }
    r->deliver(f, signal_dbm);
    return;
  }
}

std::string Medium::check_consistency() const {
  auto fail = [](std::string msg) { return "medium: " + std::move(msg); };

  if (rx_at_.size() != radios_.size() || neighbors_.size() != radios_.size()) {
    return fail("table sizes diverge (radios=" +
                std::to_string(radios_.size()) +
                " rx_at=" + std::to_string(rx_at_.size()) +
                " neighbors=" + std::to_string(neighbors_.size()) + ")");
  }
  for (std::size_t i = 0; i < radios_.size(); ++i) {
    if (radios_[i]->medium_index_ != i) {
      return fail("radio " + std::to_string(radios_[i]->id()) +
                  " has medium_index " +
                  std::to_string(radios_[i]->medium_index_) + ", expected " +
                  std::to_string(i));
    }
  }

  auto attached = [this](const Radio* r) {
    for (const Radio* a : radios_) {
      if (a == r) return true;
    }
    return false;
  };

  for (const ActiveTx& tx : active_) {
    if (tx.end < tx.start) {
      return fail("tx " + std::to_string(tx.id) + " ends before it starts");
    }
    if (!attached(tx.src)) {
      return fail("tx " + std::to_string(tx.id) + " sourced by detached radio");
    }
    for (const Radio* rcv : tx.receivers) {
      if (!attached(rcv)) {
        return fail("tx " + std::to_string(tx.id) +
                    " lists a detached receiver");
      }
      std::size_t hits = 0;
      for (const Reception& rec : rx_at_[rcv->medium_index_]) {
        if (rec.tx_id == tx.id) ++hits;
      }
      if (hits != 1) {
        return fail("tx " + std::to_string(tx.id) + " has " +
                    std::to_string(hits) + " receptions at radio " +
                    std::to_string(rcv->id()) + ", expected 1");
      }
    }
  }

  for (const RemoteActive& rt : remote_active_) {
    if (rt.b2 < rt.b1) {
      return fail("ghost tx " + std::to_string(rt.id & ~kRemoteIdBit) +
                  " ends before it starts");
    }
    if (rt.air_end > rt.b2) {
      return fail("ghost tx " + std::to_string(rt.id & ~kRemoteIdBit) +
                  " radiates past its delivery boundary");
    }
    for (const Radio* rcv : rt.receivers) {
      if (!attached(rcv)) {
        return fail("ghost tx " + std::to_string(rt.id & ~kRemoteIdBit) +
                    " lists a detached receiver");
      }
      std::size_t hits = 0;
      for (const Reception& rec : rx_at_[rcv->medium_index_]) {
        if (rec.tx_id == rt.id) ++hits;
      }
      if (hits != 1) {
        return fail("ghost tx " + std::to_string(rt.id & ~kRemoteIdBit) +
                    " has " + std::to_string(hits) + " receptions at radio " +
                    std::to_string(rcv->id()) + ", expected 1");
      }
    }
  }

  for (std::size_t i = 0; i < rx_at_.size(); ++i) {
    for (const Reception& rec : rx_at_[i]) {
      const std::vector<Radio*>* owner_receivers = nullptr;
      for (const ActiveTx& tx : active_) {
        if (tx.id == rec.tx_id) owner_receivers = &tx.receivers;
      }
      for (const RemoteActive& rt : remote_active_) {
        if (rt.id == rec.tx_id) owner_receivers = &rt.receivers;
      }
      if (owner_receivers == nullptr) {
        return fail("radio " + std::to_string(radios_[i]->id()) +
                    " holds a reception for finished tx " +
                    std::to_string(rec.tx_id));
      }
      bool listed = false;
      for (const Radio* rcv : *owner_receivers) {
        if (rcv == radios_[i]) listed = true;
      }
      if (!listed) {
        return fail("tx " + std::to_string(rec.tx_id) +
                    " does not list radio " + std::to_string(radios_[i]->id()) +
                    " although a reception exists there");
      }
    }
  }
  return {};
}

}  // namespace iiot::radio
