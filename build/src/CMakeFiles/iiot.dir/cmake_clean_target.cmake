file(REMOVE_RECURSE
  "libiiot.a"
)
