
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/collection.cpp" "src/CMakeFiles/iiot.dir/agg/collection.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/agg/collection.cpp.o.d"
  "/root/repo/src/backend/registry.cpp" "src/CMakeFiles/iiot.dir/backend/registry.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/backend/registry.cpp.o.d"
  "/root/repo/src/backend/topic_bus.cpp" "src/CMakeFiles/iiot.dir/backend/topic_bus.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/backend/topic_bus.cpp.o.d"
  "/root/repo/src/coap/endpoint.cpp" "src/CMakeFiles/iiot.dir/coap/endpoint.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/coap/endpoint.cpp.o.d"
  "/root/repo/src/coap/message.cpp" "src/CMakeFiles/iiot.dir/coap/message.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/coap/message.cpp.o.d"
  "/root/repo/src/common/crc.cpp" "src/CMakeFiles/iiot.dir/common/crc.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/common/crc.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/iiot.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/common/log.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/CMakeFiles/iiot.dir/core/deployment.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/core/deployment.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/CMakeFiles/iiot.dir/core/network.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/core/network.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/iiot.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/core/system.cpp.o.d"
  "/root/repo/src/dependability/coding.cpp" "src/CMakeFiles/iiot.dir/dependability/coding.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/dependability/coding.cpp.o.d"
  "/root/repo/src/interop/gateway.cpp" "src/CMakeFiles/iiot.dir/interop/gateway.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/interop/gateway.cpp.o.d"
  "/root/repo/src/interop/gatt.cpp" "src/CMakeFiles/iiot.dir/interop/gatt.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/interop/gatt.cpp.o.d"
  "/root/repo/src/interop/modbus.cpp" "src/CMakeFiles/iiot.dir/interop/modbus.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/interop/modbus.cpp.o.d"
  "/root/repo/src/interop/vendor_tlv.cpp" "src/CMakeFiles/iiot.dir/interop/vendor_tlv.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/interop/vendor_tlv.cpp.o.d"
  "/root/repo/src/mac/csma.cpp" "src/CMakeFiles/iiot.dir/mac/csma.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/mac/csma.cpp.o.d"
  "/root/repo/src/mac/lpl.cpp" "src/CMakeFiles/iiot.dir/mac/lpl.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/mac/lpl.cpp.o.d"
  "/root/repo/src/mac/rimac.cpp" "src/CMakeFiles/iiot.dir/mac/rimac.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/mac/rimac.cpp.o.d"
  "/root/repo/src/mac/tdma.cpp" "src/CMakeFiles/iiot.dir/mac/tdma.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/mac/tdma.cpp.o.d"
  "/root/repo/src/net/rnfd.cpp" "src/CMakeFiles/iiot.dir/net/rnfd.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/net/rnfd.cpp.o.d"
  "/root/repo/src/net/rpl.cpp" "src/CMakeFiles/iiot.dir/net/rpl.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/net/rpl.cpp.o.d"
  "/root/repo/src/radio/medium.cpp" "src/CMakeFiles/iiot.dir/radio/medium.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/radio/medium.cpp.o.d"
  "/root/repo/src/radio/radio.cpp" "src/CMakeFiles/iiot.dir/radio/radio.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/radio/radio.cpp.o.d"
  "/root/repo/src/replication/kv.cpp" "src/CMakeFiles/iiot.dir/replication/kv.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/replication/kv.cpp.o.d"
  "/root/repo/src/security/aes.cpp" "src/CMakeFiles/iiot.dir/security/aes.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/security/aes.cpp.o.d"
  "/root/repo/src/security/ccm.cpp" "src/CMakeFiles/iiot.dir/security/ccm.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/security/ccm.cpp.o.d"
  "/root/repo/src/security/secure_link.cpp" "src/CMakeFiles/iiot.dir/security/secure_link.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/security/secure_link.cpp.o.d"
  "/root/repo/src/security/sha256.cpp" "src/CMakeFiles/iiot.dir/security/sha256.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/security/sha256.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/iiot.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/transport/frag.cpp" "src/CMakeFiles/iiot.dir/transport/frag.cpp.o" "gcc" "src/CMakeFiles/iiot.dir/transport/frag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
