# Empty dependencies file for iiot.
# This may be replaced when dependencies are built.
