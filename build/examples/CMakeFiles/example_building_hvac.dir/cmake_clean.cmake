file(REMOVE_RECURSE
  "CMakeFiles/example_building_hvac.dir/building_hvac.cpp.o"
  "CMakeFiles/example_building_hvac.dir/building_hvac.cpp.o.d"
  "example_building_hvac"
  "example_building_hvac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_building_hvac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
