# Empty compiler generated dependencies file for example_building_hvac.
# This may be replaced when dependencies are built.
