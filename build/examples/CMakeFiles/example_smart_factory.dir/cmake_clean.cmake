file(REMOVE_RECURSE
  "CMakeFiles/example_smart_factory.dir/smart_factory.cpp.o"
  "CMakeFiles/example_smart_factory.dir/smart_factory.cpp.o.d"
  "example_smart_factory"
  "example_smart_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smart_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
