# Empty compiler generated dependencies file for example_construction_site.
# This may be replaced when dependencies are built.
