file(REMOVE_RECURSE
  "CMakeFiles/example_construction_site.dir/construction_site.cpp.o"
  "CMakeFiles/example_construction_site.dir/construction_site.cpp.o.d"
  "example_construction_site"
  "example_construction_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_construction_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
