
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agg.cpp" "tests/CMakeFiles/iiot_tests.dir/test_agg.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_agg.cpp.o.d"
  "/root/repo/tests/test_backend.cpp" "tests/CMakeFiles/iiot_tests.dir/test_backend.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_backend.cpp.o.d"
  "/root/repo/tests/test_coap.cpp" "tests/CMakeFiles/iiot_tests.dir/test_coap.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_coap.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/iiot_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/iiot_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_crdt.cpp" "tests/CMakeFiles/iiot_tests.dir/test_crdt.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_crdt.cpp.o.d"
  "/root/repo/tests/test_dependability.cpp" "tests/CMakeFiles/iiot_tests.dir/test_dependability.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_dependability.cpp.o.d"
  "/root/repo/tests/test_edges.cpp" "tests/CMakeFiles/iiot_tests.dir/test_edges.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_edges.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/iiot_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interop.cpp" "tests/CMakeFiles/iiot_tests.dir/test_interop.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_interop.cpp.o.d"
  "/root/repo/tests/test_mac.cpp" "tests/CMakeFiles/iiot_tests.dir/test_mac.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_mac.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/iiot_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_radio.cpp" "tests/CMakeFiles/iiot_tests.dir/test_radio.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_radio.cpp.o.d"
  "/root/repo/tests/test_replication.cpp" "tests/CMakeFiles/iiot_tests.dir/test_replication.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_replication.cpp.o.d"
  "/root/repo/tests/test_safety.cpp" "tests/CMakeFiles/iiot_tests.dir/test_safety.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_safety.cpp.o.d"
  "/root/repo/tests/test_security.cpp" "tests/CMakeFiles/iiot_tests.dir/test_security.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_security.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/iiot_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/iiot_tests.dir/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iiot.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
