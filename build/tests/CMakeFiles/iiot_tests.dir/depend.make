# Empty dependencies file for iiot_tests.
# This may be replaced when dependencies are built.
