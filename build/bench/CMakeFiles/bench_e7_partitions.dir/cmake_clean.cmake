file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_partitions.dir/bench_e7_partitions.cpp.o"
  "CMakeFiles/bench_e7_partitions.dir/bench_e7_partitions.cpp.o.d"
  "bench_e7_partitions"
  "bench_e7_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
