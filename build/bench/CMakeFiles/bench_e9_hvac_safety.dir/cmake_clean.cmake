file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_hvac_safety.dir/bench_e9_hvac_safety.cpp.o"
  "CMakeFiles/bench_e9_hvac_safety.dir/bench_e9_hvac_safety.cpp.o.d"
  "bench_e9_hvac_safety"
  "bench_e9_hvac_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_hvac_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
