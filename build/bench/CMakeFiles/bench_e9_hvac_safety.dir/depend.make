# Empty dependencies file for bench_e9_hvac_safety.
# This may be replaced when dependencies are built.
