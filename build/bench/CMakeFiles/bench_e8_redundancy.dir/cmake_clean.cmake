file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_redundancy.dir/bench_e8_redundancy.cpp.o"
  "CMakeFiles/bench_e8_redundancy.dir/bench_e8_redundancy.cpp.o.d"
  "bench_e8_redundancy"
  "bench_e8_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
