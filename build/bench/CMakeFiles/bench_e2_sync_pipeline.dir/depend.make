# Empty dependencies file for bench_e2_sync_pipeline.
# This may be replaced when dependencies are built.
