# Empty compiler generated dependencies file for bench_e5_size_scale.
# This may be replaced when dependencies are built.
