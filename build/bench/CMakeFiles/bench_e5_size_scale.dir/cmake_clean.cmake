file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_size_scale.dir/bench_e5_size_scale.cpp.o"
  "CMakeFiles/bench_e5_size_scale.dir/bench_e5_size_scale.cpp.o.d"
  "bench_e5_size_scale"
  "bench_e5_size_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_size_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
