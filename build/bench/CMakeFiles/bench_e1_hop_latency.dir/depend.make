# Empty dependencies file for bench_e1_hop_latency.
# This may be replaced when dependencies are built.
