file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_coexistence.dir/bench_e6_coexistence.cpp.o"
  "CMakeFiles/bench_e6_coexistence.dir/bench_e6_coexistence.cpp.o.d"
  "bench_e6_coexistence"
  "bench_e6_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
