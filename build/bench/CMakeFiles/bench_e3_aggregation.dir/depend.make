# Empty dependencies file for bench_e3_aggregation.
# This may be replaced when dependencies are built.
