# Empty dependencies file for bench_e12_interop.
# This may be replaced when dependencies are built.
