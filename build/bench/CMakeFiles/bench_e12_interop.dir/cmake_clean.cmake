file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_interop.dir/bench_e12_interop.cpp.o"
  "CMakeFiles/bench_e12_interop.dir/bench_e12_interop.cpp.o.d"
  "bench_e12_interop"
  "bench_e12_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
