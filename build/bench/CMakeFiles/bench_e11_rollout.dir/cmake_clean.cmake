file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_rollout.dir/bench_e11_rollout.cpp.o"
  "CMakeFiles/bench_e11_rollout.dir/bench_e11_rollout.cpp.o.d"
  "bench_e11_rollout"
  "bench_e11_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
