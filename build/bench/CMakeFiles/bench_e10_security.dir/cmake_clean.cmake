file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_security.dir/bench_e10_security.cpp.o"
  "CMakeFiles/bench_e10_security.dir/bench_e10_security.cpp.o.d"
  "bench_e10_security"
  "bench_e10_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
