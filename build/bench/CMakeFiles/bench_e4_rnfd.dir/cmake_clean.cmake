file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_rnfd.dir/bench_e4_rnfd.cpp.o"
  "CMakeFiles/bench_e4_rnfd.dir/bench_e4_rnfd.cpp.o.d"
  "bench_e4_rnfd"
  "bench_e4_rnfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_rnfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
