# Empty dependencies file for bench_e4_rnfd.
# This may be replaced when dependencies are built.
